//! End-to-end exercises of the HTTP/1.1 front door with raw TCP
//! clients: round-trips must be byte-identical to in-process compiles,
//! concurrent skewed traffic must keep the service counters exact, and
//! overload must shed with typed, parseable rejections.

use htvm::{Compiler, DeployConfig};
use htvm_ir::{DType, Graph, GraphBuilder, Tensor};
use htvm_serve::http::wire::{WireBatch, WireBatchResult, WireError, WireJob, WireResult};
use htvm_serve::http::{HttpConfig, HttpServer};
use htvm_serve::{estimate_cost, CompileService, SchedPolicy, ServeConfig, ServiceStats};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn conv_graph(channels: usize) -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input("x", &[channels, 8, 8], DType::I8);
    let w = b.constant("w", Tensor::zeros(DType::I8, &[channels, channels, 3, 3]));
    let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1)).unwrap();
    let y = b.requantize(c, 7, true).unwrap();
    b.finish(&[y]).unwrap()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        cache_budget_bytes: 16 << 20,
        tracer: htvm::Tracer::disabled(),
        ..ServeConfig::default()
    }
}

fn spawn_server(serve: ServeConfig, http: HttpConfig) -> (Arc<CompileService>, HttpServer) {
    let service = Arc::new(CompileService::new(serve));
    let server =
        HttpServer::spawn(Arc::clone(&service), "127.0.0.1:0", http).expect("ephemeral port binds");
    (service, server)
}

fn wire_job(name: &str, graph: Graph, include_artifact: bool) -> WireJob {
    WireJob {
        name: name.to_owned(),
        tenant: None,
        platform: None,
        graph: Some(graph),
        model_hex: None,
        deploy: DeployConfig::Both,
        include_artifact,
    }
}

/// A raw HTTP response: status line code, headers (lowercased names)
/// and body text.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn error(&self) -> WireError {
        serde_json::from_str(&self.body).expect("error bodies parse as WireError")
    }
}

/// A keep-alive HTTP/1.1 client over one raw `TcpStream`, hand-framing
/// requests so the tests exercise the server's real wire behavior.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("front door accepts");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout sets");
        Client { stream }
    }

    fn send_raw(&mut self, raw: &[u8]) -> Response {
        self.stream.write_all(raw).expect("request writes");
        self.read_response()
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> Response {
        self.request_bytes(method, path, body.unwrap_or("").as_bytes())
    }

    /// Like [`Client::request`] for binary bodies (raw model uploads).
    fn request_bytes(&mut self, method: &str, path: &str, body: &[u8]) -> Response {
        let mut raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(body);
        self.send_raw(&raw)
    }

    fn read_response(&mut self) -> Response {
        let mut reader = BufReader::new(&mut self.stream);
        let mut status_line = String::new();
        reader
            .read_line(&mut status_line)
            .expect("status line reads");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line reads");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header has a colon");
            let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_owned());
            if name == "content-length" {
                content_length = value.parse().expect("Content-Length parses");
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body reads in full");
        Response {
            status,
            headers,
            body: String::from_utf8(body).expect("JSON bodies are UTF-8"),
        }
    }
}

/// One-shot convenience: fresh connection, one exchange.
fn once(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    Client::connect(addr).request(method, path, body)
}

fn service_stats(addr: SocketAddr) -> ServiceStats {
    let response = once(addr, "GET", "/v1/stats", None);
    assert_eq!(response.status, 200);
    serde_json::from_str(&response.body).expect("stats parse as ServiceStats")
}

#[test]
fn http_compile_round_trip_is_byte_identical_to_in_process() {
    let (_service, server) = spawn_server(serve_config(), HttpConfig::default());
    let addr = server.addr();

    // Health and an empty stats snapshot, on one keep-alive connection.
    let mut client = Client::connect(addr);
    let health = client.request("GET", "/v1/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(
        serde_json::from_str::<serde_json::Value>(&health.body).unwrap()["ok"],
        true
    );
    let stats = client.request("GET", "/v1/stats", None);
    assert_eq!(stats.status, 200, "keep-alive serves a second request");

    // Compile over the wire, artifact included.
    let graph = conv_graph(8);
    let body = serde_json::to_string(&wire_job("wire", graph.clone(), true)).unwrap();
    let response = client.request("POST", "/v1/compile", Some(&body));
    assert_eq!(response.status, 200);
    let result: WireResult = serde_json::from_str(&response.body).expect("WireResult parses");
    assert_eq!(result.job, "wire");
    assert!(!result.cache_hit);
    let wire_artifact = result.artifact.expect("include_artifact attaches it");

    // The same compile in-process, no service at all.
    let direct = Compiler::new()
        .with_deploy(DeployConfig::Both)
        .compile(&graph)
        .expect("conv graph compiles");
    assert_eq!(
        serde_json::to_string(&wire_artifact).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "the front door must not perturb compilation"
    );

    // A repeat omitting the artifact is a cache hit with no payload.
    let body = serde_json::to_string(&wire_job("wire-again", graph, false)).unwrap();
    let response = client.request("POST", "/v1/compile", Some(&body));
    assert_eq!(response.status, 200);
    let result: WireResult = serde_json::from_str(&response.body).unwrap();
    assert!(result.cache_hit);
    assert!(result.artifact.is_none(), "metadata-only by default");

    let stats = service_stats(addr);
    assert_eq!(stats.jobs, 2);
    assert_eq!(stats.artifact_cache.misses, 1);
    assert_eq!(stats.artifact_cache.hits, 1);
    server.shutdown();
}

#[test]
fn concurrent_clients_with_skewed_mix_keep_counters_exact() {
    let (_service, server) = spawn_server(serve_config(), HttpConfig::default());
    let addr = server.addr();

    // 6 clients × 4 requests, skewed: three quarters of the traffic
    // wants the same hot graph; two colder graphs make up the rest.
    let graphs = [conv_graph(4), conv_graph(6), conv_graph(10)];
    let n_clients = 6;
    let per_client = 4;
    std::thread::scope(|scope| {
        for t in 0..n_clients {
            let graphs = &graphs;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..per_client {
                    // Requests 0..2 hit the hot graph; request 3 takes
                    // a cold one, a different one per client parity.
                    let graph = if i < 3 {
                        &graphs[0]
                    } else {
                        &graphs[1 + t % 2]
                    };
                    let body = serde_json::to_string(&wire_job(
                        &format!("c{t}#{i}"),
                        graph.clone(),
                        false,
                    ))
                    .unwrap();
                    let response = client.request("POST", "/v1/compile", Some(&body));
                    assert_eq!(response.status, 200, "body: {}", response.body);
                    let result: WireResult = serde_json::from_str(&response.body).unwrap();
                    assert_eq!(result.job, format!("c{t}#{i}"));
                }
            });
        }
    });

    let stats = service_stats(addr);
    let jobs = (n_clients * per_client) as u64;
    assert_eq!(stats.jobs, jobs);
    assert_eq!(
        stats.artifact_cache.misses, 3,
        "exactly one cold compile per distinct graph, racing clients included"
    );
    assert_eq!(
        stats.artifact_cache.hits + stats.artifact_cache.misses + stats.coalesced,
        jobs,
        "every HTTP job lands in exactly one bucket"
    );
    assert_eq!(stats.shed, 0, "an unmetered front door sheds nothing");
    server.shutdown();
}

#[test]
fn batch_coalesces_and_saturation_sheds_typed_429s() {
    // Budget = exactly one cold compile of the first job: the rest of
    // the batch must shed deterministically at admission.
    let cold_costs: Vec<u64> = [12usize, 16, 20, 24]
        .iter()
        .map(|&c| estimate_cost(&conv_graph(c), false))
        .collect();
    let (_service, server) = spawn_server(
        ServeConfig {
            workers: 1,
            queue_cost_budget: cold_costs[0],
            policy: SchedPolicy::CostAware,
            ..serve_config()
        },
        HttpConfig::default(),
    );
    let addr = server.addr();

    let batch = WireBatch {
        jobs: [12usize, 16, 20, 24]
            .iter()
            .map(|&c| wire_job(&format!("cold{c}"), conv_graph(c), false))
            .collect(),
    };
    let body = serde_json::to_string(&batch).unwrap();
    let response = once(addr, "POST", "/v1/batch", Some(&body));
    assert_eq!(response.status, 200, "batch responses are per-entry typed");
    let parsed: WireBatchResult = serde_json::from_str(&response.body).unwrap();
    assert_eq!(parsed.results.len(), 4);

    let first = parsed.results[0]
        .result
        .as_ref()
        .expect("an idle service always admits the first job");
    assert_eq!(first.job, "cold12");
    for (entry, &cost) in parsed.results[1..].iter().zip(&cold_costs[1..]) {
        assert!(entry.result.is_none());
        let error = entry.error.as_ref().expect("shed entries carry the error");
        assert_eq!(error.status, 429);
        assert_eq!(error.kind, "rejected");
        let rejection = error.rejection.as_ref().expect("sheds are structured");
        assert!(rejection.retry_after_ms > 0);
        match &rejection.reason {
            htvm_serve::RejectReason::QueueBudget {
                estimated_cost,
                budget,
                ..
            } => {
                assert_eq!(*estimated_cost, cost);
                assert_eq!(*budget, cold_costs[0]);
            }
            other => panic!("expected a QueueBudget rejection, got {other:?}"),
        }
    }
    let stats = service_stats(addr);
    assert_eq!(stats.jobs, 1);
    assert_eq!(stats.shed, 3);
    assert_eq!(stats.shed_budget, 3);

    // Once the queue drains, a resubmitted batch coalesces repeats and
    // counts them exactly.
    let batch = WireBatch {
        jobs: (0..4)
            .map(|i| wire_job(&format!("hot{i}"), conv_graph(12), false))
            .collect(),
    };
    let body = serde_json::to_string(&batch).unwrap();
    let response = once(addr, "POST", "/v1/batch", Some(&body));
    let parsed: WireBatchResult = serde_json::from_str(&response.body).unwrap();
    let results: Vec<&WireResult> = parsed
        .results
        .iter()
        .map(|e| e.result.as_ref().expect("drained service admits the batch"))
        .collect();
    let coalesced = results.iter().filter(|r| r.coalesced).count();
    let hits = results.iter().filter(|r| r.cache_hit).count();
    assert_eq!(hits, 1, "the leader hits the warmed cache");
    assert_eq!(
        coalesced, 3,
        "every repeat of the warm key coalesces onto the leader"
    );
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_not_hangups() {
    let (_service, server) = spawn_server(
        serve_config(),
        HttpConfig {
            max_body_bytes: 1 << 10,
            ..HttpConfig::default()
        },
    );
    let addr = server.addr();

    let garbage = once(addr, "POST", "/v1/compile", Some("{not json"));
    assert_eq!(garbage.status, 400);
    assert_eq!(garbage.error().kind, "bad_request");

    let missing = once(addr, "POST", "/v1/compile", Some("{\"name\": \"x\"}"));
    assert_eq!(missing.status, 400, "well-formed JSON, wrong schema");

    let lost = once(addr, "GET", "/v1/nope", None);
    assert_eq!(lost.status, 404);
    assert_eq!(lost.error().kind, "not_found");

    let wrong_method = once(addr, "DELETE", "/v1/stats", None);
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.error().kind, "method_not_allowed");

    let huge = Client::connect(addr)
        .send_raw(b"POST /v1/compile HTTP/1.1\r\nHost: t\r\nContent-Length: 999999\r\n\r\n");
    assert_eq!(huge.status, 413);
    assert_eq!(huge.error().kind, "payload_too_large");

    let ancient = Client::connect(addr).send_raw(b"GET /v1/healthz HTTP/3\r\n\r\n");
    assert_eq!(ancient.status, 505);

    let chunked = Client::connect(addr)
        .send_raw(b"POST /v1/compile HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    assert_eq!(chunked.status, 501);

    let stats = service_stats(addr);
    assert_eq!(stats.jobs, 0, "none of the garbage reached the service");
    server.shutdown();
}

#[test]
fn import_round_trip_is_byte_identical_and_shares_cache_keys() {
    let (_service, server) = spawn_server(serve_config(), HttpConfig::default());
    let addr = server.addr();

    // Upload the model file; the compiled artifact must be
    // byte-identical (under serde) to an in-process compile of the same
    // graph, because the importer reproduces the graph exactly.
    let graph = conv_graph(8);
    let model = htvm_frontend::emit(&graph).expect("graph emits");
    let mut client = Client::connect(addr);
    let response = client.request_bytes(
        "POST",
        "/v1/import?name=filed&artifact=true&deploy=both",
        &model,
    );
    assert_eq!(response.status, 200, "body: {}", response.body);
    let result: WireResult = serde_json::from_str(&response.body).unwrap();
    assert_eq!(result.job, "filed");
    assert!(!result.cache_hit);
    let imported_artifact = result.artifact.expect("artifact=true attaches it");
    let direct = Compiler::new()
        .with_deploy(DeployConfig::Both)
        .compile(&graph)
        .expect("conv graph compiles");
    assert_eq!(
        serde_json::to_string(&imported_artifact).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "imported model must compile to the identical artifact"
    );

    // The same graph posted as JSON hits the cache entry the file
    // upload created: both paths resolve to the same ArtifactKey.
    let body = serde_json::to_string(&wire_job("json-twin", graph.clone(), false)).unwrap();
    let response = client.request("POST", "/v1/compile", Some(&body));
    assert_eq!(response.status, 200);
    let result: WireResult = serde_json::from_str(&response.body).unwrap();
    assert!(
        result.cache_hit,
        "file-imported and JSON jobs share cache keys"
    );

    // model_hex in the JSON envelope is the third equivalent spelling.
    let hex_job = WireJob {
        name: "hexed".to_owned(),
        tenant: None,
        platform: None,
        graph: None,
        model_hex: Some(htvm_serve::http::wire::encode_hex(&model)),
        deploy: DeployConfig::Both,
        include_artifact: false,
    };
    let body = serde_json::to_string(&hex_job).unwrap();
    let response = client.request("POST", "/v1/compile", Some(&body));
    assert_eq!(response.status, 200, "body: {}", response.body);
    let result: WireResult = serde_json::from_str(&response.body).unwrap();
    assert!(result.cache_hit);

    let stats = service_stats(addr);
    assert_eq!(stats.jobs, 3);
    assert_eq!(stats.rejected_import, 0);
    assert_eq!(stats.artifact_cache.misses, 1);
    assert_eq!(stats.artifact_cache.hits, 2);
    server.shutdown();
}

#[test]
fn malformed_imports_get_422_with_the_variant_name() {
    let (_service, server) = spawn_server(serve_config(), HttpConfig::default());
    let addr = server.addr();
    let mut client = Client::connect(addr);
    let model = htvm_frontend::emit(&conv_graph(4)).expect("graph emits");

    // Corrupt magic: exact variant in the detail.
    let mut bad_magic = model.clone();
    bad_magic[4..8].copy_from_slice(b"NOPE");
    let response = client.request_bytes("POST", "/v1/import?name=bad", &bad_magic);
    assert_eq!(response.status, 422);
    let error = response.error();
    assert_eq!(error.kind, "import_error");
    assert!(
        error.detail.contains("BadMagic"),
        "detail must carry the ImportError variant name, got {:?}",
        error.detail
    );

    // An empty body is a truncation.
    let response = client.request_bytes("POST", "/v1/import", b"");
    assert_eq!(response.status, 422);
    assert!(response.error().detail.contains("Truncated"));

    // Unknown deploy value is a 400 before the importer runs.
    let response = client.request_bytes("POST", "/v1/import?deploy=gpu", &model);
    assert_eq!(response.status, 400);
    assert_eq!(response.error().kind, "bad_request");

    // A batch with one poisoned model_hex entry: the poisoned entry
    // carries the import error, the healthy entries still compile.
    let healthy = wire_job("ok", conv_graph(4), false);
    let poisoned = WireJob {
        name: "poisoned".to_owned(),
        tenant: None,
        platform: None,
        graph: None,
        model_hex: Some(htvm_serve::http::wire::encode_hex(&bad_magic)),
        deploy: DeployConfig::Both,
        include_artifact: false,
    };
    let batch = WireBatch {
        jobs: vec![healthy, poisoned],
    };
    let body = serde_json::to_string(&batch).unwrap();
    let response = client.request("POST", "/v1/batch", Some(&body));
    assert_eq!(response.status, 200);
    let parsed: WireBatchResult = serde_json::from_str(&response.body).unwrap();
    assert!(parsed.results[0].result.is_some(), "healthy entry compiles");
    let entry_error = parsed.results[1]
        .error
        .as_ref()
        .expect("poisoned entry errors");
    assert_eq!(entry_error.status, 422);
    assert_eq!(entry_error.kind, "import_error");
    assert!(entry_error.detail.contains("BadMagic"));

    // Counters are exact: three importer rejections (two uploads + one
    // batch entry), and only the healthy batch entry became a job.
    let stats = service_stats(addr);
    assert_eq!(stats.rejected_import, 3);
    assert_eq!(stats.jobs, 1);
    assert_eq!(stats.shed, 0);
    server.shutdown();
}

#[test]
fn oversized_imports_hit_the_existing_413_path() {
    let (_service, server) = spawn_server(
        serve_config(),
        HttpConfig {
            max_body_bytes: 1 << 10,
            ..HttpConfig::default()
        },
    );
    let addr = server.addr();
    // A model comfortably over the 1 KiB cap is refused at framing,
    // before the importer (or the service counters) ever see it.
    let model = htvm_frontend::emit(&conv_graph(16)).expect("graph emits");
    assert!(model.len() > 1 << 10, "test model must exceed the cap");
    let response = Client::connect(addr).request_bytes("POST", "/v1/import", &model);
    assert_eq!(response.status, 413);
    assert_eq!(response.error().kind, "payload_too_large");
    let stats = service_stats(addr);
    assert_eq!(stats.rejected_import, 0, "the importer never saw the body");
    assert_eq!(stats.jobs, 0);
    server.shutdown();
}

#[test]
fn connection_cap_refuses_with_503_and_retry_after() {
    let (_service, server) = spawn_server(
        serve_config(),
        HttpConfig {
            max_connections: 0,
            ..HttpConfig::default()
        },
    );
    let addr = server.addr();
    // With a zero cap every connection is refused before parsing.
    let response = Client::connect(addr).read_response();
    assert_eq!(response.status, 503);
    assert_eq!(response.error().kind, "overloaded");
    assert_eq!(response.header("retry-after"), Some("1"));
    server.shutdown();
}
