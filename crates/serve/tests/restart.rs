//! Restart-durability integration tests: a service rebooted over its
//! persistence root must serve every previously compiled key without
//! recompiling, and the replayed artifacts must be byte-identical to
//! the pre-restart ones. This is the warm-start contract the `fleet`
//! CI job gates on.

use htvm::DeployConfig;
use htvm_ir::{DType, Graph, GraphBuilder, Tensor};
use htvm_serve::{CompileService, Fleet, JobRequest, ServeConfig};
use std::path::{Path, PathBuf};

/// A unique scratch root per test; wiped before use so a stale run
/// can't fake the warm start.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htvm-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn conv_graph(channels: usize) -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input("x", &[channels, 8, 8], DType::I8);
    let w = b.constant("w", Tensor::zeros(DType::I8, &[channels, channels, 3, 3]));
    let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1)).unwrap();
    let y = b.requantize(c, 7, true).unwrap();
    b.finish(&[y]).unwrap()
}

fn config(root: &Path) -> ServeConfig {
    ServeConfig {
        workers: 2,
        cache_budget_bytes: 64 << 20,
        tracer: htvm::Tracer::disabled(),
        persist_root: Some(root.to_owned()),
        ..ServeConfig::default()
    }
}

/// Distinct compile jobs (one per channel count, so one per key).
fn jobs() -> Vec<JobRequest> {
    [4usize, 8, 16, 24]
        .into_iter()
        .map(|ch| {
            JobRequest::compile_only(&format!("conv{ch}"), conv_graph(ch), DeployConfig::Both)
        })
        .collect()
}

#[test]
fn restart_serves_every_cached_key_without_recompiling() {
    let root = scratch("single");
    let jobs_count = jobs().len() as u64;

    // Cold pass: every key compiles once and spills to disk.
    let cold_artifacts: Vec<String> = {
        let service = CompileService::new(config(&root));
        let artifacts = jobs()
            .into_iter()
            .map(|job| {
                let result = service.submit(job).expect("cold jobs compile");
                assert!(!result.cache_hit);
                serde_json::to_string(&result.artifact).expect("artifacts serialize")
            })
            .collect();
        let stats = service.stats();
        assert_eq!(stats.artifact_cache.misses, jobs_count);
        assert_eq!(
            stats.persist_writes, jobs_count,
            "every distinct compile spills exactly one durable entry"
        );
        assert_eq!(stats.persist_load_ok, 0, "a fresh root re-admits nothing");
        artifacts
        // The service drops here: memory cache, tile caches and
        // counters are all gone. Only the disk entries survive.
    };

    // Warm reboot: the disk entries come back as cache insertions.
    let rebooted = CompileService::new(config(&root));
    let booted = rebooted.stats();
    assert_eq!(booted.persist_load_ok, jobs_count);
    assert_eq!(booted.persist_load_skipped, 0);
    assert_eq!(booted.artifact_cache.insertions, jobs_count);
    assert_eq!(booted.artifact_cache.misses, 0);

    // Replay: zero recompiles, byte-identical artifacts.
    for (job, cold) in jobs().into_iter().zip(&cold_artifacts) {
        let result = rebooted.submit(job).expect("warm jobs hit");
        assert!(
            result.cache_hit,
            "'{}' must hit the re-admitted entry",
            result.job
        );
        let warm = serde_json::to_string(&result.artifact).expect("artifacts serialize");
        assert_eq!(&warm, cold, "'{}' must replay byte-identically", result.job);
    }
    let stats = rebooted.stats();
    assert_eq!(
        stats.artifact_cache.misses, 0,
        "a warm restart recompiles nothing"
    );
    assert_eq!(stats.artifact_cache.hits, jobs_count);
    assert_eq!(
        stats.artifact_cache.hits + stats.artifact_cache.misses + stats.coalesced,
        stats.jobs,
        "exact accounting survives the persistence paths"
    );
    assert_eq!(stats.persist_writes, 0, "hits re-spill nothing");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fleet_restart_is_warm_and_byte_identical() {
    let root = scratch("fleet");
    let mut fleet = Fleet::new(3, &root, config(&root));

    // Cold pass, recording each job's owner and artifact bytes.
    let cold: Vec<(usize, String)> = jobs()
        .into_iter()
        .map(|job| {
            let (owner, result) = fleet.submit(job).expect("cold fleet jobs compile");
            let bytes = serde_json::to_string(&result.artifact).expect("artifacts serialize");
            (owner, bytes)
        })
        .collect();

    // Kill and reboot the instance serving the most keys.
    let busiest = (0..fleet.len())
        .max_by_key(|&i| cold.iter().filter(|(owner, _)| *owner == i).count())
        .unwrap();
    let owned = cold.iter().filter(|(owner, _)| *owner == busiest).count() as u64;
    assert!(owned > 0, "the busiest instance must own at least one key");
    fleet.restart(busiest);
    let rebooted = fleet.instance(busiest).stats();
    assert_eq!(
        rebooted.persist_load_ok, owned,
        "the reboot re-admits its whole shard"
    );

    // Replay: same owners (affinity survives), zero recompiles on the
    // rebooted instance, byte-identical artifacts fleet-wide.
    for (job, (owner, cold_bytes)) in jobs().into_iter().zip(&cold) {
        let (replay_owner, result) = fleet.submit(job).expect("warm fleet jobs hit");
        assert_eq!(replay_owner, *owner, "key affinity must survive a restart");
        assert!(result.cache_hit);
        let bytes = serde_json::to_string(&result.artifact).expect("artifacts serialize");
        assert_eq!(&bytes, cold_bytes);
    }
    assert_eq!(
        fleet.instance(busiest).stats().artifact_cache.misses,
        0,
        "the rebooted instance serves its shard from the re-admitted entries"
    );

    // Instance stats are labeled and remember the reboot.
    let stats = fleet.stats();
    assert_eq!(stats.len(), 3);
    assert_eq!(stats[busiest].restarts, 1);
    assert_eq!(stats[busiest].name, format!("instance-{busiest}"));

    let _ = std::fs::remove_dir_all(&root);
}
