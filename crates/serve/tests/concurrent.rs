//! Concurrency and determinism: N worker threads through one shared
//! service must produce exactly the artifacts that N sequential cold
//! compiles produce, byte for byte, with cache counters accounting for
//! every job.

use htvm::{Compiler, DeployConfig};
use htvm_models::{ds_cnn, resnet8, toyadmos_dae, QuantScheme};
use htvm_serve::{CompileService, JobRequest, ServeConfig};
use std::collections::BTreeMap;

/// The request mix: three zoo models under two deploy targets, each
/// requested several times — six distinct keys, heavy repetition.
fn job_mix() -> Vec<(String, htvm_ir::Graph, DeployConfig)> {
    let models = [
        ds_cnn(QuantScheme::Mixed),
        resnet8(QuantScheme::Mixed),
        toyadmos_dae(QuantScheme::Mixed),
    ];
    let deploys = [DeployConfig::Both, DeployConfig::Digital];
    let mut jobs = Vec::new();
    for round in 0..3 {
        for model in &models {
            for deploy in deploys {
                jobs.push((
                    format!("{}/{:?}#{round}", model.name, deploy),
                    model.graph.clone(),
                    deploy,
                ));
            }
        }
    }
    jobs
}

#[test]
fn concurrent_batch_matches_sequential_cold_compiles() {
    let jobs = job_mix();
    let distinct: usize = 6;
    assert_eq!(jobs.len(), 18);

    // Sequential baseline: a fresh compiler per job, no sharing at all.
    let baseline: Vec<String> = jobs
        .iter()
        .map(|(_, graph, deploy)| {
            let artifact = Compiler::new()
                .with_deploy(*deploy)
                .compile(graph)
                .expect("zoo models compile");
            serde_json::to_string(&artifact).expect("artifacts serialize")
        })
        .collect();

    // The same mix through one shared service on 4 worker threads.
    let service = CompileService::new(ServeConfig {
        workers: 4,
        cache_budget_bytes: 64 << 20,
        tracer: htvm::Tracer::disabled(),
        ..ServeConfig::default()
    });
    let requests: Vec<JobRequest> = jobs
        .iter()
        .map(|(name, graph, deploy)| JobRequest::compile_only(name, graph.clone(), *deploy))
        .collect();
    let results = service.submit_batch(requests);

    assert_eq!(results.len(), jobs.len());
    let mut coalesced = 0u64;
    for (i, result) in results.into_iter().enumerate() {
        let result = result.expect("every job in the mix compiles");
        assert_eq!(result.job, jobs[i].0, "results arrive in request order");
        assert_eq!(
            serde_json::to_string(&result.artifact).expect("artifacts serialize"),
            baseline[i],
            "job {} must be byte-identical to its sequential cold compile",
            jobs[i].0
        );
        if result.coalesced {
            coalesced += 1;
        }
    }

    let stats = service.stats();
    assert_eq!(stats.jobs, jobs.len() as u64);
    assert_eq!(
        stats.artifact_cache.misses as usize, distinct,
        "exactly one cold compile per distinct (graph, deploy) key"
    );
    assert_eq!(
        stats.coalesced,
        (jobs.len() - distinct) as u64,
        "every in-batch repeat coalesces onto its key's leader"
    );
    assert_eq!(stats.coalesced, coalesced, "per-job flags match counters");
    assert_eq!(
        stats.artifact_cache.hits + stats.artifact_cache.misses + stats.coalesced,
        stats.jobs,
        "every job is accounted exactly once"
    );
    assert_eq!(
        stats.artifact_cache.evictions, 0,
        "budget fits the whole mix"
    );
}

#[test]
fn racing_submitters_agree_on_artifacts() {
    // Distinct from the batch test: here the *callers* race, each
    // driving the shared service from its own thread via submit().
    let service = CompileService::new(ServeConfig {
        workers: 1,
        cache_budget_bytes: 64 << 20,
        tracer: htvm::Tracer::disabled(),
        ..ServeConfig::default()
    });
    let model = ds_cnn(QuantScheme::Mixed);
    let n_threads = 4;
    let per_thread = 3;

    let artifacts: BTreeMap<usize, Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let service = &service;
                let graph = model.graph.clone();
                scope.spawn(move || {
                    (0..per_thread)
                        .map(|i| {
                            let result = service
                                .submit(JobRequest::compile_only(
                                    &format!("t{t}#{i}"),
                                    graph.clone(),
                                    DeployConfig::Both,
                                ))
                                .expect("ds_cnn compiles");
                            serde_json::to_string(&result.artifact).expect("serializes")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(t, h)| (t, h.join().expect("submitter thread panicked")))
            .collect()
    });

    let reference = &artifacts[&0][0];
    for (thread, results) in &artifacts {
        for (i, bytes) in results.iter().enumerate() {
            assert_eq!(
                bytes, reference,
                "thread {thread} job {i} diverged from the reference artifact"
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.jobs, (n_threads * per_thread) as u64);
    // Single-flight coalescing makes the counters exact even under
    // racing callers: one leader compiles (the only miss); every other
    // job either coalesced onto the in-flight compile or hit the cache
    // afterwards — the split is timing-dependent, the sum is not.
    assert_eq!(stats.artifact_cache.misses, 1);
    assert_eq!(
        stats.artifact_cache.hits + stats.coalesced,
        stats.jobs - 1,
        "hits {} + coalesced {} must cover every non-leader job",
        stats.artifact_cache.hits,
        stats.coalesced
    );
    assert_eq!(stats.shed, 0, "an unmetered service never sheds");
}
