//! Property tests for the consistent-hash shard ring: assignments must
//! be deterministic across processes, stable under fleet resizes (only
//! the keys the new instance captures move, and they move *to* it),
//! and fair enough that no instance starves.

use htvm_serve::ShardRing;
use proptest::prelude::*;

/// A plausible routing key: the ring shards on `ArtifactKey::id`
/// digests (32 hex chars), but nothing about the ring requires that
/// shape, so arbitrary-length hex strings stress it harder.
fn routing_key() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255, 1..20)
        .prop_map(|bytes| bytes.iter().map(|b| format!("{b:02x}")).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rebuilding an identical ring reproduces identical assignments:
    /// nothing in construction or lookup is seeded per process.
    #[test]
    fn assignment_is_deterministic(
        keys in prop::collection::vec(routing_key(), 1..64),
        instances in 1usize..8,
        replicas in 1usize..96,
    ) {
        let a = ShardRing::with_replicas(instances, replicas);
        let b = ShardRing::with_replicas(instances, replicas);
        for key in &keys {
            let owner = a.assign(key);
            prop_assert!(owner < instances);
            prop_assert_eq!(owner, b.assign(key));
        }
    }

    /// The consistent-hashing contract: growing the fleet from `n` to
    /// `n + 1` instances, every key either keeps its owner or moves to
    /// the NEW instance — never between old ones. This is exactly what
    /// makes per-instance persistent caches survive a scale-out: no
    /// surviving instance loses keys it already compiled and spilled.
    #[test]
    fn growing_the_fleet_only_moves_keys_to_the_new_instance(
        keys in prop::collection::vec(routing_key(), 1..128),
        instances in 1usize..8,
        replicas in 1usize..96,
    ) {
        let before = ShardRing::with_replicas(instances, replicas);
        let after = ShardRing::with_replicas(instances + 1, replicas);
        for key in &keys {
            let old = before.assign(key);
            let new = after.assign(key);
            prop_assert!(
                new == old || new == instances,
                "key {key:?} moved {old} -> {new}, but only moves to the new \
                 instance {instances} are allowed"
            );
        }
    }
}

/// At the default replica count, a resize moves roughly `K/N` of the
/// keys — the point of consistent hashing over mod-N (which moves
/// nearly all of them). The bound is deliberately loose (3x the ideal
/// share): the split is hash-uniform, not exact.
#[test]
fn resize_moves_about_one_share_of_keys() {
    let keys: Vec<String> = (0..4000).map(|tag| format!("key-{tag:04}")).collect();
    for n in [2usize, 3, 5, 8] {
        let before = ShardRing::new(n);
        let after = ShardRing::new(n + 1);
        let moved = keys
            .iter()
            .filter(|key| before.assign(key) != after.assign(key))
            .count();
        let ideal = keys.len() / (n + 1);
        assert!(
            moved <= 3 * ideal,
            "resize {n} -> {} moved {moved} of {} keys (ideal share {ideal})",
            n + 1,
            keys.len()
        );
        assert!(moved > 0, "a resize that moves nothing routed nothing");
    }
}
