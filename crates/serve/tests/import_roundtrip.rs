//! Import-path differential tests at the service layer: a zoo model
//! that goes file → importer → service must produce the same cache key
//! and byte-identical compiled artifact as the same graph submitted
//! in-process.

use htvm::DeployConfig;
use htvm_frontend::emit;
use htvm_ir::canonical_form;
use htvm_models::{all_models, stress_test, QuantScheme};
use htvm_serve::{CompileService, JobRequest, ServeConfig};

fn service() -> CompileService {
    CompileService::new(ServeConfig {
        workers: 2,
        cache_budget_bytes: 64 << 20,
        tracer: htvm::Tracer::disabled(),
        ..ServeConfig::default()
    })
}

#[test]
fn imported_zoo_models_share_cache_entries_with_in_process_builds() {
    let service = service();
    let mut expected_jobs = 0;
    for model in all_models(QuantScheme::Mixed) {
        // Cold: the in-process graph compiles and lands in the cache.
        let direct = service
            .submit(JobRequest::compile_only(
                model.name,
                model.graph.clone(),
                DeployConfig::Both,
            ))
            .unwrap_or_else(|e| panic!("{} compiles in-process: {e}", model.name));
        assert!(!direct.cache_hit);

        // Through the file: emit, import, verify graph identity.
        let bytes = emit(&model.graph).expect("zoo models emit");
        let imported = service
            .import_model(model.name, &bytes)
            .unwrap_or_else(|e| panic!("{} imports: {e}", model.name));
        assert_eq!(
            model.graph, imported,
            "{} import changed the graph",
            model.name
        );
        assert_eq!(
            canonical_form(&model.graph),
            canonical_form(&imported),
            "{} canonical encoding diverged",
            model.name
        );

        // Submit the imported graph: it must *hit* the cache entry the
        // in-process build created (identical ArtifactKey) and hand
        // back a byte-identical artifact.
        let filed = service
            .submit_model(model.name, None, DeployConfig::Both, &bytes)
            .unwrap_or_else(|e| panic!("{} submits from file: {e}", model.name));
        assert!(
            filed.cache_hit,
            "{} file-imported job missed the in-process cache entry",
            model.name
        );
        assert_eq!(
            direct.key_id, filed.key_id,
            "{} cache keys diverged",
            model.name
        );
        assert_eq!(
            serde_json::to_string(&direct.artifact).expect("artifacts serialize"),
            serde_json::to_string(&filed.artifact).expect("artifacts serialize"),
            "{} artifacts diverged between import and in-process paths",
            model.name
        );
        expected_jobs += 2;
    }
    let stats = service.stats();
    assert_eq!(stats.jobs, expected_jobs);
    assert_eq!(stats.rejected_import, 0);
    assert_eq!(stats.artifact_cache.hits, expected_jobs / 2);
    assert_eq!(stats.artifact_cache.misses, expected_jobs / 2);
}

#[test]
fn cold_import_compiles_identically_to_cold_in_process() {
    // No cache warm-up this time: two *separate* services compile the
    // stress model, one from the file, one in-process. Determinism (the
    // identity guarantee end to end) means the artifacts still match.
    let model = stress_test(QuantScheme::Int8);
    let bytes = emit(&model.graph).expect("stress model emits");
    let from_file = service()
        .submit_model(model.name, Some("tenant-a"), DeployConfig::Both, &bytes)
        .expect("file path compiles");
    let in_process = service()
        .submit(JobRequest::compile_only(
            model.name,
            model.graph.clone(),
            DeployConfig::Both,
        ))
        .expect("in-process path compiles");
    assert!(!from_file.cache_hit && !in_process.cache_hit);
    assert_eq!(from_file.key_id, in_process.key_id);
    assert_eq!(
        serde_json::to_string(&from_file.artifact).unwrap(),
        serde_json::to_string(&in_process.artifact).unwrap(),
        "cold compiles from both paths must be byte-identical"
    );
}
