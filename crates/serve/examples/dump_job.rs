//! Prints a `WireJob` JSON body for driving `httpd` by hand:
//!
//! ```sh
//! cargo run --release -p htvm-serve --example dump_job > job.json
//! curl -s -X POST http://127.0.0.1:7440/v1/compile -d @job.json
//! ```

use htvm::DeployConfig;
use htvm_ir::{DType, GraphBuilder, Tensor};
use htvm_serve::http::wire::WireJob;

fn main() {
    let mut b = GraphBuilder::new();
    let x = b.input("x", &[16, 8, 8], DType::I8);
    let w = b.constant("w", Tensor::zeros(DType::I8, &[16, 16, 3, 3]));
    let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1)).expect("conv2d");
    let y = b.requantize(c, 7, true).expect("requantize");
    let graph = b.finish(&[y]).expect("graph verifies");
    let job = WireJob {
        name: "curl-demo".to_owned(),
        tenant: None,
        platform: None,
        graph: Some(graph),
        model_hex: None,
        deploy: DeployConfig::Both,
        include_artifact: false,
    };
    println!(
        "{}",
        serde_json::to_string(&job).expect("wire jobs serialize")
    );
}
