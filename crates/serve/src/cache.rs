//! The content-addressed artifact cache.
//!
//! Maps [`ArtifactKey`] → [`Artifact`] under a byte budget with
//! least-recently-used eviction. Sizes are measured as the serialized
//! length of the artifact — the same serde encoding the byte-identity
//! tests compare — so the budget bounds what a client would actually
//! receive over the wire, not Rust in-memory overhead.
//!
//! The cache is internally synchronized: one instance is shared by every
//! worker thread of a [`CompileService`](crate::CompileService). All
//! operations take the lock once and do O(entries) work at worst (the
//! LRU victim scan), which is fine at the few-hundred-entry scale a
//! byte-budgeted artifact cache reaches.

use crate::key::ArtifactKey;
use htvm::Artifact;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;

/// Counters and occupancy of an [`ArtifactCache`], serializable for
/// bench reports and service stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactCacheStats {
    /// Artifacts currently resident.
    pub entries: u64,
    /// Serialized bytes currently resident.
    pub bytes: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Artifacts admitted.
    pub insertions: u64,
    /// Artifacts evicted to make room.
    pub evictions: u64,
    /// Artifacts refused admission because they alone exceed the budget.
    pub oversized: u64,
}

struct Entry {
    artifact: Artifact,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<ArtifactKey, Entry>,
    bytes: usize,
    /// Monotonic access clock; strictly increasing, so LRU victims are
    /// unique and eviction order is deterministic.
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    oversized: u64,
}

/// A thread-safe LRU artifact cache bounded by serialized size.
pub struct ArtifactCache {
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl ArtifactCache {
    /// An empty cache that will hold at most `budget_bytes` of
    /// serialized artifacts. A zero budget admits nothing — useful as
    /// the "cold every time" baseline in benchmarks.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        ArtifactCache {
            budget_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Probes for residency without touching the hit/miss counters or
    /// the entry's recency. This is the admission-control cost probe: a
    /// resident key means the job is near-free (an artifact clone), so
    /// the scheduler can rank it ahead of cold compiles without
    /// perturbing the counters the determinism tests assert on.
    #[must_use]
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.inner
            .lock()
            .expect("artifact cache poisoned")
            .entries
            .contains_key(key)
    }

    /// The configured byte budget. Zero means the cache admits nothing.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Looks up a key, refreshing its recency on hit. Returns a clone of
    /// the cached artifact — by construction byte-identical (under serde)
    /// to what a cold compile of the same key produces.
    #[must_use]
    pub fn get(&self, key: &ArtifactKey) -> Option<Artifact> {
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let artifact = entry.artifact.clone();
                inner.hits += 1;
                Some(artifact)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Admits an artifact, evicting least-recently-used entries until it
    /// fits. Returns `false` when the artifact alone exceeds the budget
    /// (it is not admitted, and nothing is evicted for it). Re-inserting
    /// an existing key refreshes the entry in place.
    pub fn insert(&self, key: ArtifactKey, artifact: &Artifact) -> bool {
        let bytes = serde_json::to_string(artifact)
            .expect("artifacts serialize infallibly")
            .len();
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        if bytes > self.budget_bytes {
            inner.oversized += 1;
            return false;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.budget_bytes {
            // The recency tick is strictly monotonic, so `last_used` is
            // unique today — but the victim scan iterates a `HashMap`,
            // whose order varies across runs. Break any tie on
            // `last_used` by the key's digest so the choice never
            // depends on iteration order, even if recency semantics
            // ever coarsen (e.g. batched ticks).
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, k.id()))
                .map(|(k, _)| k.clone())
                .expect("over budget implies a resident entry");
            let evicted = inner.entries.remove(&victim).expect("victim is resident");
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
        }
        inner.bytes += bytes;
        inner.insertions += 1;
        inner.entries.insert(
            key,
            Entry {
                artifact: artifact.clone(),
                bytes,
                last_used: tick,
            },
        );
        true
    }

    /// A snapshot of the counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> ArtifactCacheStats {
        let inner = self.inner.lock().expect("artifact cache poisoned");
        ArtifactCacheStats {
            entries: inner.entries.len() as u64,
            bytes: inner.bytes as u64,
            budget_bytes: self.budget_bytes as u64,
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            oversized: inner.oversized,
        }
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm::{DeployConfig, DianaConfig, LowerOptions};
    use htvm_ir::{DType, Graph, GraphBuilder};
    use htvm_soc::Program;

    fn graph(tag: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x", &[tag, 4, 4], DType::I8);
        let y = b.relu(x).unwrap();
        b.finish(&[y]).unwrap()
    }

    fn key(tag: usize) -> ArtifactKey {
        ArtifactKey::new(
            "diana",
            &graph(tag),
            DeployConfig::Both,
            &DianaConfig::default(),
            &LowerOptions::default(),
        )
    }

    fn artifact() -> Artifact {
        Artifact {
            program: Program {
                buffers: vec![],
                steps: vec![],
                inputs: vec![],
                outputs: vec![],
                activation_peak: 0,
                fallbacks: Default::default(),
                dma: Default::default(),
            },
            binary: Default::default(),
            assignments: vec![],
            stats: Default::default(),
        }
    }

    fn entry_bytes() -> usize {
        serde_json::to_string(&artifact()).unwrap().len()
    }

    #[test]
    fn hit_returns_equal_artifact_and_counts() {
        let cache = ArtifactCache::new(1 << 20);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.insert(key(1), &artifact()));
        let back = cache.get(&key(1)).expect("resident");
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&artifact()).unwrap()
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, entry_bytes() as u64);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // Budget for exactly two entries.
        let cache = ArtifactCache::new(2 * entry_bytes());
        assert!(cache.insert(key(1), &artifact()));
        assert!(cache.insert(key(2), &artifact()));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.insert(key(3), &artifact()));
        assert!(cache.get(&key(1)).is_some(), "recently used survives");
        assert!(cache.get(&key(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(&key(3)).is_some(), "new entry is resident");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= stats.budget_bytes);
    }

    #[test]
    fn oversized_artifacts_are_refused_without_evicting() {
        let cache = ArtifactCache::new(entry_bytes());
        assert!(cache.insert(key(1), &artifact()));
        let tiny = ArtifactCache::new(entry_bytes() - 1);
        assert!(!tiny.insert(key(2), &artifact()));
        assert_eq!(tiny.stats().oversized, 1);
        assert_eq!(tiny.stats().entries, 0);
        // A zero-budget cache admits nothing: the no-cache baseline.
        let never = ArtifactCache::new(0);
        assert!(!never.insert(key(3), &artifact()));
        assert!(never.get(&key(3)).is_none());
    }

    #[test]
    fn contains_probe_touches_no_counters_or_recency() {
        let cache = ArtifactCache::new(2 * entry_bytes());
        assert!(!cache.contains(&key(1)));
        assert!(cache.insert(key(1), &artifact()));
        assert!(cache.insert(key(2), &artifact()));
        // Probe 1 many times; if probes refreshed recency, 2 would be
        // the LRU victim below. They must not.
        for _ in 0..8 {
            assert!(cache.contains(&key(1)));
        }
        assert!(cache.insert(key(3), &artifact()));
        assert!(
            cache.get(&key(2)).is_some(),
            "probes must not refresh recency: 1 (older) is the victim"
        );
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 0),
            "contains() must not count as a lookup"
        );
    }

    #[test]
    fn eviction_order_is_deterministic_across_runs() {
        // Two caches fed the identical op sequence must evict the
        // identical victims, leaving identical residents — regardless of
        // HashMap iteration order. Run the sequence several times so an
        // order-dependent victim scan would almost surely diverge.
        let run = || {
            let cache = ArtifactCache::new(3 * entry_bytes());
            for tag in 1..=3 {
                assert!(cache.insert(key(tag), &artifact()));
            }
            // All three entries share insertion-time recency patterns;
            // now push four more keys through, each evicting one victim.
            for tag in 4..=7 {
                assert!(cache.insert(key(tag), &artifact()));
            }
            let mut resident: Vec<usize> = (1..=7).filter(|&t| cache.contains(&key(t))).collect();
            resident.sort_unstable();
            (resident, cache.stats().evictions)
        };
        let first = run();
        for _ in 0..4 {
            assert_eq!(run(), first, "eviction must be deterministic");
        }
        // And the determinism is the *right* determinism: strict LRU.
        assert_eq!(first, (vec![5, 6, 7], 4));
    }

    #[test]
    fn reinserting_a_key_replaces_in_place() {
        let cache = ArtifactCache::new(4 * entry_bytes());
        assert!(cache.insert(key(1), &artifact()));
        assert!(cache.insert(key(1), &artifact()));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, entry_bytes() as u64);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0);
    }
}
