//! The multi-tenant compile-and-simulate service.
//!
//! One [`CompileService`] owns a base [`Compiler`] and an
//! [`ArtifactCache`]. Jobs arrive as [`JobRequest`]s — a graph, a deploy
//! target, and optionally a simulation spec — and are scheduled on a
//! bounded pool of worker threads ([`CompileService::submit_batch`]).
//! Repeat requests are served from the cache; the returned artifact is
//! byte-identical (under serde) to a cold compile of the same request,
//! because compilation is deterministic and the cache key
//! ([`ArtifactKey`]) covers everything the output depends on.
//!
//! Per-job compilers are clones of the base compiler, so every tenant
//! shares one [`TileCache`](htvm::TileCache): even a cache *miss* on a
//! new graph reuses tiling solves from other tenants' layers.

use crate::cache::{ArtifactCache, ArtifactCacheStats};
use crate::key::ArtifactKey;
use htvm::{
    tracks, Artifact, CompileError, Compiler, DeployConfig, FaultPlan, Machine, RunError,
    RunReport, Tensor, TileCacheStats, TimeDomain, Trace, Tracer,
};
use htvm_ir::Graph;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Construction parameters for a [`CompileService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum worker threads a [`CompileService::submit_batch`] call
    /// fans out to (at least 1; batches smaller than this use fewer).
    pub workers: usize,
    /// Byte budget of the artifact cache (serialized size). Zero
    /// disables caching entirely.
    pub cache_budget_bytes: usize,
    /// Span collector for per-job service spans and compiler phase
    /// spans. Disabled by default; drain with
    /// [`CompileService::take_trace`].
    pub tracer: Tracer,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            cache_budget_bytes: 64 << 20,
            tracer: Tracer::disabled(),
        }
    }
}

/// What to simulate after compiling, when a job wants execution too.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Input tensors, in program input order.
    pub inputs: Vec<Tensor>,
    /// Fault plan for the run (empty = healthy run).
    pub faults: FaultPlan,
    /// Per-job deadline in simulated cycles; exceeding it fails the job
    /// with [`RunError::DeadlineExceeded`]. `None` = unbounded.
    pub deadline_cycles: Option<u64>,
}

/// One unit of work: compile a graph for a deploy target, optionally
/// simulate it.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen label, echoed in results, errors and trace spans.
    pub name: String,
    /// The quantized graph to compile.
    pub graph: Graph,
    /// Deploy target (which accelerators to dispatch to).
    pub deploy: DeployConfig,
    /// Simulation spec; `None` compiles only.
    pub run: Option<RunSpec>,
}

impl JobRequest {
    /// A compile-only job.
    #[must_use]
    pub fn compile_only(name: &str, graph: Graph, deploy: DeployConfig) -> Self {
        JobRequest {
            name: name.to_owned(),
            graph,
            deploy,
            run: None,
        }
    }
}

/// Why a job failed. Compilation and simulation failures carry the
/// job's label so batch clients can attribute them.
#[derive(Debug)]
pub enum JobError {
    /// The graph failed to compile.
    Compile {
        /// The failing job's label.
        job: String,
        /// The underlying compiler error.
        error: CompileError,
    },
    /// The compiled program failed to simulate (including deadline
    /// overruns, reported as [`RunError::DeadlineExceeded`]).
    Run {
        /// The failing job's label.
        job: String,
        /// The underlying simulator error.
        error: RunError,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Compile { job, error } => write!(f, "job '{job}' failed to compile: {error}"),
            JobError::Run { job, error } => write!(f, "job '{job}' failed to run: {error}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Compile { error, .. } => Some(error),
            JobError::Run { error, .. } => Some(error),
        }
    }
}

/// A completed job.
#[derive(Debug)]
pub struct JobResult {
    /// The job's label, echoed from the request.
    pub job: String,
    /// Display digest of the job's [`ArtifactKey`].
    pub key_id: String,
    /// Whether the artifact came from the cache.
    pub cache_hit: bool,
    /// The compiled deployment.
    pub artifact: Artifact,
    /// Simulation report, when the job asked to run.
    pub report: Option<RunReport>,
    /// Wall microseconds the job waited in the batch queue before a
    /// worker picked it up.
    pub queue_us: u64,
    /// Wall microseconds of service time (compile-or-hit + simulate).
    pub service_us: u64,
}

/// A snapshot of the service's counters, serializable for bench
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Jobs processed to completion (success or failure).
    pub jobs: u64,
    /// Artifact-cache counters (hits, misses, evictions, occupancy).
    pub artifact_cache: ArtifactCacheStats,
    /// Shared tiling-solve memo counters across all tenants.
    pub tile_cache: TileCacheStats,
}

/// A single-flight rendezvous: the first thread to miss a key becomes
/// the *leader* and compiles; concurrent requesters for the same key
/// wait here instead of duplicating the compile (thundering-herd
/// protection), then read the leader's insert from the cache.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn land(&self) {
        *self.done.lock().expect("flight poisoned") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let guard = self.done.lock().expect("flight poisoned");
        drop(
            self.cv
                .wait_while(guard, |done| !*done)
                .expect("flight poisoned"),
        );
    }
}

/// A multi-tenant compile-and-simulate service with a content-addressed
/// artifact cache. See the [crate docs](crate) for the architecture.
pub struct CompileService {
    base: Compiler,
    cache: ArtifactCache,
    inflight: Mutex<HashMap<ArtifactKey, Arc<Flight>>>,
    tracer: Tracer,
    workers: usize,
    jobs: AtomicU64,
}

impl CompileService {
    /// A service over a default [`Compiler`] (default DIANA platform,
    /// default lowering options).
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        CompileService::with_compiler(config, Compiler::new())
    }

    /// A service over a custom base compiler (platform, lowering
    /// options, dispatch hook). The config's tracer is installed on the
    /// compiler so phase spans land in the same trace as job spans; each
    /// job still overrides the deploy target from its request.
    #[must_use]
    pub fn with_compiler(config: ServeConfig, base: Compiler) -> Self {
        CompileService {
            base: base.with_tracer(config.tracer.clone()),
            cache: ArtifactCache::new(config.cache_budget_bytes),
            inflight: Mutex::new(HashMap::new()),
            tracer: config.tracer,
            workers: config.workers.max(1),
            jobs: AtomicU64::new(0),
        }
    }

    /// Processes one job on the calling thread.
    pub fn submit(&self, job: JobRequest) -> Result<JobResult, JobError> {
        self.process(job, 0)
    }

    /// Schedules a batch on up to `workers` threads and returns results
    /// in request order. Jobs are dispatched first-come-first-served
    /// from a shared queue; each result records how long the job
    /// queued before a worker picked it up.
    pub fn submit_batch(&self, jobs: Vec<JobRequest>) -> Vec<Result<JobResult, JobError>> {
        let n = jobs.len();
        let workers = self.workers.min(n).max(1);
        let epoch = Instant::now();
        let queue: Mutex<VecDeque<(usize, JobRequest)>> =
            Mutex::new(jobs.into_iter().enumerate().collect());
        let slots: Vec<Mutex<Option<Result<JobResult, JobError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = queue.lock().expect("job queue poisoned").pop_front();
                    let Some((index, job)) = next else { break };
                    let queue_us = epoch.elapsed().as_micros() as u64;
                    let result = self.process(job, queue_us);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every scheduled job writes its slot")
            })
            .collect()
    }

    fn process(&self, job: JobRequest, queue_us: u64) -> Result<JobResult, JobError> {
        let started = Instant::now();
        let compiler = self.base.clone().with_deploy(job.deploy);
        let key = ArtifactKey::new(
            &job.graph,
            job.deploy,
            compiler.platform(),
            compiler.lower_options(),
        );
        let mut span = self
            .tracer
            .scope(tracks::SERVICE, &format!("job:{}", job.name));
        span.arg("key", key.id());
        span.arg("queue_us", queue_us);
        let result = self.compile_and_run(&job, &compiler, &key, &mut span);
        self.jobs.fetch_add(1, Ordering::Relaxed);
        span.arg("ok", result.is_ok());
        let (artifact, cache_hit, report) = result?;
        Ok(JobResult {
            job: job.name,
            key_id: key.id(),
            cache_hit,
            artifact,
            report,
            queue_us,
            service_us: started.elapsed().as_micros() as u64,
        })
    }

    #[allow(clippy::type_complexity)]
    fn compile_and_run(
        &self,
        job: &JobRequest,
        compiler: &Compiler,
        key: &ArtifactKey,
        span: &mut htvm_trace::ScopedSpan<'_>,
    ) -> Result<(Artifact, bool, Option<RunReport>), JobError> {
        let (artifact, cache_hit) = self.artifact_for(job, compiler, key)?;
        span.arg("cache_hit", cache_hit);
        let report = match &job.run {
            Some(spec) => {
                let machine = Machine::new(*compiler.platform());
                let report = machine
                    .run_bounded(
                        &artifact.program,
                        &spec.inputs,
                        &spec.faults,
                        spec.deadline_cycles,
                    )
                    .map_err(|error| JobError::Run {
                        job: job.name.clone(),
                        error,
                    })?;
                span.arg("cycles", report.total_cycles());
                Some(report)
            }
            None => None,
        };
        Ok((artifact, cache_hit, report))
    }

    /// Fetches the job's artifact from the cache or compiles it,
    /// coalescing concurrent misses on the same key: exactly one thread
    /// (the *leader*) compiles while the rest wait and then read the
    /// leader's insert. Each job touches the cache counters exactly
    /// once — a leader registers one miss, everyone else one hit — so
    /// `hits + misses == jobs` deterministically even under races.
    fn artifact_for(
        &self,
        job: &JobRequest,
        compiler: &Compiler,
        key: &ArtifactKey,
    ) -> Result<(Artifact, bool), JobError> {
        loop {
            // One critical section decides this thread's role: follower
            // of an in-flight compile (no cache touch), cache hit, or
            // newly appointed leader.
            let flight = {
                let mut inflight = self.inflight.lock().expect("inflight map poisoned");
                if let Some(flight) = inflight.get(key) {
                    Arc::clone(flight)
                } else if let Some(artifact) = self.cache.get(key) {
                    return Ok((artifact, true));
                } else {
                    let flight = Arc::new(Flight::new());
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    drop(inflight);
                    let compiled = compiler.compile(&job.graph);
                    // Publish before landing the flight, so woken
                    // followers find the artifact resident; on error,
                    // followers re-enter and compile for themselves.
                    if let Ok(artifact) = &compiled {
                        self.cache.insert(key.clone(), artifact);
                    }
                    self.inflight
                        .lock()
                        .expect("inflight map poisoned")
                        .remove(key);
                    flight.land();
                    let artifact = compiled.map_err(|error| JobError::Compile {
                        job: job.name.clone(),
                        error,
                    })?;
                    return Ok((artifact, false));
                }
            };
            flight.wait();
        }
    }

    /// A snapshot of the service counters, including the shared
    /// tile-cache counters every tenant benefits from.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs: self.jobs.load(Ordering::Relaxed),
            artifact_cache: self.cache.stats(),
            tile_cache: self.base.tile_cache().stats(),
        }
    }

    /// Drains everything traced so far (job spans plus compiler phase
    /// spans) into one wall-clock trace on the
    /// [`tracks::serve`] track table.
    #[must_use]
    pub fn take_trace(&self) -> Trace {
        self.tracer.take(TimeDomain::WallMicros, tracks::serve())
    }
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService")
            .field("workers", &self.workers)
            .field("stats", &self.stats())
            .finish()
    }
}
