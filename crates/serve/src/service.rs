//! The multi-tenant, multi-platform compile-and-simulate service.
//!
//! One [`CompileService`] serves a whole *fleet*: each platform in its
//! [`PlatformManifest`] gets its own base [`Compiler`] (and with it its
//! own shared `TileCache`), its own [`ArtifactCache`], and its own
//! single-flight table. Jobs name their platform on the
//! [`JobRequest::platform`] field and are routed to that slot; an
//! unknown platform — or a deploy target that needs an engine the
//! platform lacks — fails with a typed [`JobError::Platform`], never a
//! panic. Jobs that name no platform go to the manifest's default
//! ([`DEFAULT_PLATFORM`]).
//!
//! Jobs pass through **admission control** before any work is
//! scheduled: each job's cost is estimated from its graph size and the
//! cache state (a resident key makes the job near-free), per-tenant
//! quotas cap how much any one tenant can have in flight, and when the
//! queued cost would exceed the service's budget the job is **shed**
//! with a typed [`JobError::Rejected`] instead of letting latency grow
//! without bound. Admission is global across platforms — the worker
//! pool is one shared resource.
//!
//! Admitted batches are scheduled **cost-aware** by default
//! ([`SchedPolicy::CostAware`]): cheap jobs (cache hits) run before
//! expensive cold compiles, so one heavy miss cannot head-of-line-block
//! a batch of hits. Identical [`ArtifactKey`]s within a batch are
//! **coalesced** before they reach the pool — one leader does the work,
//! its followers are serviced from the leader's artifact the moment it
//! lands. The platform id feeds the key, so jobs for different
//! platforms never coalesce even when their graphs agree.
//!
//! With [`ServeConfig::persist_root`] set, every freshly compiled
//! artifact is also spilled to disk ([`PersistStore`]) and the whole
//! store is re-admitted at construction — a restarted service starts
//! *warm*: previously served keys hit without recompiling, and the
//! artifacts are byte-identical to the pre-restart ones.
//!
//! Repeat requests are served from the cache; the returned artifact is
//! byte-identical (under serde) to a cold compile of the same request,
//! because compilation is deterministic and the cache key
//! ([`ArtifactKey`]) covers everything the output depends on.

use crate::cache::{ArtifactCache, ArtifactCacheStats};
use crate::key::ArtifactKey;
use crate::persist::{PersistStats, PersistStore};
use htvm::{
    tracks, Artifact, CompileError, Compiler, DeployConfig, FaultPlan, Machine, RunError,
    RunReport, Span, Tensor, TileCacheStats, TimeDomain, Trace, Tracer,
};
use htvm_frontend::ImportError;
use htvm_ir::Graph;
use htvm_soc::{Capabilities, PlatformManifest, DEFAULT_PLATFORM};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How admitted jobs are ordered onto the worker pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Strict request order — the PR-5 behavior. A cold compile at the
    /// head of a batch blocks every cache hit behind it.
    Fifo,
    /// Cheapest-estimated-cost first (ties broken by request order, so
    /// scheduling stays deterministic). Cache hits and coalesced
    /// followers are near-free and jump ahead of cold compiles.
    #[default]
    CostAware,
}

/// Construction parameters for a [`CompileService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum worker threads a [`CompileService::submit_batch`] call
    /// fans out to (at least 1; batches smaller than this use fewer).
    pub workers: usize,
    /// Byte budget of *each platform's* artifact cache (serialized
    /// size). Zero disables caching entirely — and with it in-batch
    /// coalescing, since a zero-budget service models "no artifact
    /// reuse at all".
    pub cache_budget_bytes: usize,
    /// Span collector for per-job service spans and compiler phase
    /// spans. Disabled by default; drain with
    /// [`CompileService::take_trace`].
    pub tracer: Tracer,
    /// Scheduling order for admitted jobs.
    pub policy: SchedPolicy,
    /// Admission budget in [`estimate_cost`] units: when the summed
    /// estimated cost of admitted-but-unfinished jobs would exceed this,
    /// new jobs are shed with [`RejectReason::QueueBudget`]. An idle
    /// service (nothing queued) always admits one job, so a single
    /// over-budget request can still make progress. `u64::MAX`
    /// (the default) never sheds.
    pub queue_cost_budget: u64,
    /// Maximum jobs one tenant may have admitted-but-unfinished at a
    /// time; exceeding it sheds with [`RejectReason::TenantQuota`].
    /// `usize::MAX` (the default) is unmetered.
    pub tenant_quota: usize,
    /// The fleet of platforms [`CompileService::new`] serves, one
    /// compiler + tile cache + artifact cache per entry. Defaults to
    /// [`PlatformManifest::builtin`]. Ignored by
    /// [`CompileService::with_compiler`], which is a single-platform
    /// service over the caller's compiler.
    pub manifest: PlatformManifest,
    /// Root directory of the persistent artifact cache; `None` (the
    /// default) keeps the cache memory-only. When set, freshly compiled
    /// artifacts are spilled under `<root>/v1/<platform>/` and the
    /// whole store is re-admitted at construction (warm start).
    pub persist_root: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            cache_budget_bytes: 64 << 20,
            tracer: Tracer::disabled(),
            policy: SchedPolicy::CostAware,
            queue_cost_budget: u64::MAX,
            tenant_quota: usize::MAX,
            manifest: PlatformManifest::builtin(),
            persist_root: None,
        }
    }
}

/// Estimated cost of serving one job, in abstract scheduler units.
///
/// A resident cache key makes the job an artifact clone — near-free,
/// cost [`HIT_COST`]. A cold compile scales with the graph: tiling
/// solves are per-layer and MAC volume tracks how much constant data
/// the emit phase must move, so `nodes + MACs/10k` is a serviceable
/// monotone proxy. The absolute scale only matters relative to
/// [`ServeConfig::queue_cost_budget`].
#[must_use]
pub fn estimate_cost(graph: &Graph, cached: bool) -> u64 {
    if cached {
        HIT_COST
    } else {
        10 + graph.len() as u64 + graph.total_macs() / 10_000
    }
}

/// [`estimate_cost`] of a job whose key is resident in the cache.
pub const HIT_COST: u64 = 1;

/// What to simulate after compiling, when a job wants execution too.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Input tensors, in program input order.
    pub inputs: Vec<Tensor>,
    /// Fault plan for the run (empty = healthy run).
    pub faults: FaultPlan,
    /// Per-job deadline in simulated cycles; exceeding it fails the job
    /// with [`RunError::DeadlineExceeded`]. `None` = unbounded.
    pub deadline_cycles: Option<u64>,
}

/// One unit of work: compile a graph for a deploy target on one
/// platform of the fleet, optionally simulate it.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen label, echoed in results, errors and trace spans.
    pub name: String,
    /// Tenant the job is accounted to, for per-tenant admission quotas.
    pub tenant: String,
    /// Manifest id of the platform to compile for; `None` routes to the
    /// service's default platform.
    pub platform: Option<String>,
    /// The quantized graph to compile.
    pub graph: Graph,
    /// Deploy target (which accelerators to dispatch to). Must be
    /// within the routed platform's declared capabilities.
    pub deploy: DeployConfig,
    /// Simulation spec; `None` compiles only.
    pub run: Option<RunSpec>,
}

impl JobRequest {
    /// A compile-only job under the anonymous tenant, on the default
    /// platform.
    #[must_use]
    pub fn compile_only(name: &str, graph: Graph, deploy: DeployConfig) -> Self {
        JobRequest {
            name: name.to_owned(),
            tenant: String::from("anon"),
            platform: None,
            graph,
            deploy,
            run: None,
        }
    }

    /// The same job accounted to a named tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_owned();
        self
    }

    /// The same job routed to a named platform of the fleet manifest.
    #[must_use]
    pub fn on_platform(mut self, platform: &str) -> Self {
        self.platform = Some(platform.to_owned());
        self
    }
}

/// Why admission control refused a job. Serializable so the HTTP front
/// door can return it verbatim as a `429` body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The queued estimated cost would exceed the service budget.
    QueueBudget {
        /// This job's estimated cost.
        estimated_cost: u64,
        /// Cost already admitted and not yet finished.
        queued_cost: u64,
        /// The configured [`ServeConfig::queue_cost_budget`].
        budget: u64,
    },
    /// The tenant is at its in-flight quota.
    TenantQuota {
        /// The tenant that hit its quota.
        tenant: String,
        /// Jobs the tenant currently has admitted-but-unfinished.
        inflight: u64,
        /// The configured [`ServeConfig::tenant_quota`].
        quota: u64,
    },
}

/// A typed load-shed: the `429 Too Many Requests` of the service layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    /// Which admission rule refused the job.
    pub reason: RejectReason,
    /// Client backoff hint in milliseconds.
    pub retry_after_ms: u64,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.reason {
            RejectReason::QueueBudget {
                estimated_cost,
                queued_cost,
                budget,
            } => write!(
                f,
                "queue budget exhausted (job cost {estimated_cost}, queued {queued_cost}, budget {budget})"
            ),
            RejectReason::TenantQuota {
                tenant,
                inflight,
                quota,
            } => write!(
                f,
                "tenant '{tenant}' at quota ({inflight} in flight, quota {quota})"
            ),
        }
    }
}

/// Why a job failed. Compilation and simulation failures carry the
/// job's label so batch clients can attribute them.
#[derive(Debug)]
pub enum JobError {
    /// The graph failed to compile.
    Compile {
        /// The failing job's label.
        job: String,
        /// The underlying compiler error.
        error: CompileError,
    },
    /// The compiled program failed to simulate (including deadline
    /// overruns, reported as [`RunError::DeadlineExceeded`]).
    Run {
        /// The failing job's label.
        job: String,
        /// The underlying simulator error.
        error: RunError,
    },
    /// Admission control shed the job before any work was done.
    Rejected {
        /// The shed job's label.
        job: String,
        /// The typed rejection (reason + backoff hint).
        rejection: Rejection,
    },
    /// The job's model bytes failed to import (malformed, truncated, or
    /// unsupported file). The error's `Display` leads with the
    /// [`ImportError::variant_name`], so wire-level details stay
    /// machine-matchable.
    Import {
        /// The failing job's label.
        job: String,
        /// The typed importer rejection.
        error: ImportError,
    },
    /// The job could not be routed: it names a platform the manifest
    /// does not declare, or a deploy target that needs an engine the
    /// platform lacks. The HTTP front door maps this to a `422`.
    Platform {
        /// The failing job's label.
        job: String,
        /// The platform the job asked for (or was routed to).
        platform: String,
        /// Why routing refused it.
        detail: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Compile { job, error } => write!(f, "job '{job}' failed to compile: {error}"),
            JobError::Run { job, error } => write!(f, "job '{job}' failed to run: {error}"),
            JobError::Rejected { job, rejection } => {
                write!(f, "job '{job}' shed by admission control: {rejection}")
            }
            JobError::Import { job, error } => write!(f, "job '{job}' failed to import: {error}"),
            JobError::Platform {
                job,
                platform,
                detail,
            } => write!(f, "job '{job}' cannot be served on '{platform}': {detail}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Compile { error, .. } => Some(error),
            JobError::Run { error, .. } => Some(error),
            JobError::Rejected { .. } => None,
            JobError::Import { error, .. } => Some(error),
            JobError::Platform { .. } => None,
        }
    }
}

/// A completed job.
#[derive(Debug)]
pub struct JobResult {
    /// The job's label, echoed from the request.
    pub job: String,
    /// The manifest id of the platform that served the job.
    pub platform: String,
    /// Display digest of the job's [`ArtifactKey`].
    pub key_id: String,
    /// Whether the artifact came from the cache.
    pub cache_hit: bool,
    /// Whether the job was coalesced onto another job's compile (it
    /// never touched the cache counters itself).
    pub coalesced: bool,
    /// The compiled deployment.
    pub artifact: Artifact,
    /// Simulation report, when the job asked to run.
    pub report: Option<RunReport>,
    /// Wall microseconds the job waited in the batch queue before a
    /// worker picked it up.
    pub queue_us: u64,
    /// Wall microseconds of service time (compile-or-hit + simulate).
    pub service_us: u64,
    /// Order in which the service started this job, across the service's
    /// lifetime (0-based). With one worker this is exactly the schedule,
    /// which the policy tests assert on.
    pub sched_seq: u64,
}

/// Per-platform slice of the service counters. The exact-accounting
/// invariant holds *per platform*:
/// `artifact_cache.hits + artifact_cache.misses + coalesced == jobs`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// The platform's manifest id.
    pub platform: String,
    /// Jobs this platform processed to completion (success or failure).
    pub jobs: u64,
    /// Jobs serviced from another job's in-flight compile on this
    /// platform.
    pub coalesced: u64,
    /// This platform's artifact-cache counters.
    pub artifact_cache: ArtifactCacheStats,
    /// This platform's shared tiling-solve memo counters.
    pub tile_cache: TileCacheStats,
    /// This platform's persistent-store counters (all zero when
    /// persistence is disabled).
    pub persist: PersistStats,
}

/// A snapshot of the service's counters, serializable for bench
/// reports. The `artifact_cache`, `tile_cache` and persistence fields
/// are field-wise sums across platforms; `platforms` carries the
/// per-platform breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Jobs processed to completion (success or failure), summed across
    /// platforms. Shed jobs are counted in `shed`, not here.
    pub jobs: u64,
    /// Jobs serviced from another job's in-flight compile without
    /// touching the cache counters (batch coalescing + single-flight
    /// followers), summed across platforms.
    pub coalesced: u64,
    /// Jobs shed by admission control (total).
    pub shed: u64,
    /// Shed because the queue cost budget was exhausted.
    pub shed_budget: u64,
    /// Shed because the tenant was at its in-flight quota.
    pub shed_quota: u64,
    /// Model files rejected by the importer (`/v1/import` payloads that
    /// never became jobs; not counted in `jobs` or `shed`).
    #[serde(default)]
    pub rejected_import: u64,
    /// Processed jobs that explicitly named their platform (as opposed
    /// to riding the default route).
    #[serde(default)]
    pub routed_by_platform: u64,
    /// Artifacts durably spilled to disk, summed across platforms.
    #[serde(default)]
    pub persist_writes: u64,
    /// Persisted entries re-admitted at startup, summed across
    /// platforms.
    #[serde(default)]
    pub persist_load_ok: u64,
    /// Persisted entries skipped at startup (corrupt, stamp mismatch,
    /// or refused admission), summed across platforms.
    #[serde(default)]
    pub persist_load_skipped: u64,
    /// Artifact-cache counters (hits, misses, evictions, occupancy),
    /// summed across platforms.
    pub artifact_cache: ArtifactCacheStats,
    /// Tiling-solve memo counters, summed across platforms (each
    /// platform's tenants share one tile cache).
    pub tile_cache: TileCacheStats,
    /// The per-platform breakdown, in manifest declaration order.
    #[serde(default)]
    pub platforms: Vec<PlatformStats>,
}

impl ServiceStats {
    /// The per-platform slice for one manifest id.
    #[must_use]
    pub fn platform(&self, id: &str) -> Option<&PlatformStats> {
        self.platforms.iter().find(|p| p.platform == id)
    }
}

/// A single-flight rendezvous: the first thread to miss a key becomes
/// the *leader* and compiles; concurrent requesters for the same key
/// wait here instead of duplicating the compile (thundering-herd
/// protection), then take the leader's artifact directly — a
/// *coalesced* serve that never touches the cache counters. A `None`
/// outcome means the leader failed; followers re-enter and compile for
/// themselves.
struct Flight {
    slot: Mutex<Option<Option<Artifact>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn land(&self, artifact: Option<Artifact>) {
        *self.slot.lock().expect("flight poisoned") = Some(artifact);
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<Artifact> {
        let guard = self.slot.lock().expect("flight poisoned");
        self.cv
            .wait_while(guard, |slot| slot.is_none())
            .expect("flight poisoned")
            .clone()
            .expect("wait_while guarantees a landed flight")
    }
}

/// Live admission-control state: cost and per-tenant counts of every
/// admitted-but-unfinished job, across `submit` and `submit_batch`
/// callers alike. Global across platforms — the worker pool is one
/// shared resource.
#[derive(Default)]
struct Admission {
    queued_cost: u64,
    tenant_inflight: HashMap<String, u64>,
}

/// How a worker obtains a job's artifact.
enum ArtifactSource {
    /// Probe the cache, coalesce on the in-flight table, compile on miss.
    Resolve,
    /// The artifact is already in hand (a batch-coalesced follower).
    Ready(Box<Artifact>),
}

/// One admitted batch entry: a leader plus the follower jobs coalesced
/// onto its key.
struct Scheduled {
    index: usize,
    slot: usize,
    job: JobRequest,
    key: ArtifactKey,
    cost: u64,
    followers: Vec<(usize, JobRequest)>,
}

/// One platform of the fleet: its compiler (with its own shared tile
/// cache), its artifact cache, its single-flight table, its optional
/// persistent store, and its slice of the job counters.
struct PlatformSlot {
    id: String,
    capabilities: Capabilities,
    base: Compiler,
    cache: ArtifactCache,
    inflight: Mutex<HashMap<ArtifactKey, Arc<Flight>>>,
    persist: Option<PersistStore>,
    jobs: AtomicU64,
    coalesced: AtomicU64,
}

impl PlatformSlot {
    fn build(
        id: String,
        capabilities: Capabilities,
        base: Compiler,
        cache_budget_bytes: usize,
        persist_root: Option<&PathBuf>,
    ) -> Self {
        let cache = ArtifactCache::new(cache_budget_bytes);
        let persist = persist_root.map(|root| {
            let store = PersistStore::open(root, &id)
                .expect("the persistence root must be creatable at service construction");
            store.load_into(&cache);
            store
        });
        PlatformSlot {
            id,
            capabilities,
            base,
            cache,
            inflight: Mutex::new(HashMap::new()),
            persist,
            jobs: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn persist_stats(&self) -> PersistStats {
        self.persist
            .as_ref()
            .map(PersistStore::stats)
            .unwrap_or_default()
    }
}

/// A multi-tenant, multi-platform compile-and-simulate service with
/// per-platform content-addressed artifact caches, optional disk
/// persistence, cost-aware scheduling and typed load shedding. See the
/// [crate docs](crate) for the architecture.
pub struct CompileService {
    slots: Vec<PlatformSlot>,
    index: HashMap<String, usize>,
    default_slot: usize,
    cache_budget_bytes: usize,
    admission: Mutex<Admission>,
    tracer: Tracer,
    workers: usize,
    policy: SchedPolicy,
    queue_cost_budget: u64,
    tenant_quota: u64,
    shed: AtomicU64,
    shed_budget: AtomicU64,
    shed_quota: AtomicU64,
    rejected_import: AtomicU64,
    routed_by_platform: AtomicU64,
    seq: AtomicU64,
}

impl CompileService {
    /// A service over the config's [`PlatformManifest`]: one compiler,
    /// tile cache and artifact cache per declared platform, with the
    /// manifest's [`DEFAULT_PLATFORM`] (or its first entry) as the
    /// default route.
    ///
    /// # Panics
    ///
    /// When the manifest fails [`PlatformManifest::validate`], or when
    /// [`ServeConfig::persist_root`] is set but not creatable — both
    /// are construction-time misconfigurations a service should refuse
    /// to start on, not runtime job errors.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        config
            .manifest
            .validate()
            .expect("the service manifest must validate");
        let slots: Vec<PlatformSlot> = config
            .manifest
            .platforms
            .iter()
            .map(|spec| {
                PlatformSlot::build(
                    spec.id.clone(),
                    spec.capabilities,
                    Compiler::new()
                        .with_platform(spec.soc)
                        .with_tracer(config.tracer.clone()),
                    config.cache_budget_bytes,
                    config.persist_root.as_ref(),
                )
            })
            .collect();
        CompileService::assemble(config, slots)
    }

    /// A single-platform service over a custom base compiler (platform,
    /// lowering options, dispatch hook), routed as [`DEFAULT_PLATFORM`]
    /// with full capabilities. The config's `manifest` is ignored; its
    /// `persist_root` is honored. The config's tracer is installed on
    /// the compiler so phase spans land in the same trace as job spans;
    /// each job still overrides the deploy target from its request.
    #[must_use]
    pub fn with_compiler(config: ServeConfig, base: Compiler) -> Self {
        let slot = PlatformSlot::build(
            DEFAULT_PLATFORM.to_owned(),
            Capabilities::full(),
            base.with_tracer(config.tracer.clone()),
            config.cache_budget_bytes,
            config.persist_root.as_ref(),
        );
        CompileService::assemble(config, vec![slot])
    }

    fn assemble(config: ServeConfig, slots: Vec<PlatformSlot>) -> Self {
        let index: HashMap<String, usize> = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| (slot.id.clone(), i))
            .collect();
        let default_slot = index.get(DEFAULT_PLATFORM).copied().unwrap_or(0);
        CompileService {
            slots,
            index,
            default_slot,
            cache_budget_bytes: config.cache_budget_bytes,
            admission: Mutex::new(Admission::default()),
            tracer: config.tracer,
            workers: config.workers.max(1),
            policy: config.policy,
            queue_cost_budget: config.queue_cost_budget,
            tenant_quota: u64::try_from(config.tenant_quota).unwrap_or(u64::MAX),
            shed: AtomicU64::new(0),
            shed_budget: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            rejected_import: AtomicU64::new(0),
            routed_by_platform: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }

    /// The scheduling policy this service orders batches with.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The platform ids this service routes, in manifest order.
    #[must_use]
    pub fn platform_ids(&self) -> Vec<&str> {
        self.slots.iter().map(|slot| slot.id.as_str()).collect()
    }

    /// Routes a job to its platform slot: the named platform must be
    /// declared and its capabilities must cover the deploy target.
    fn resolve(&self, job: &JobRequest) -> Result<usize, JobError> {
        let slot_idx = match job.platform.as_deref() {
            None => self.default_slot,
            Some(id) => match self.index.get(id) {
                Some(&i) => i,
                None => {
                    return Err(JobError::Platform {
                        job: job.name.clone(),
                        platform: id.to_owned(),
                        detail: format!(
                            "unknown platform (serving: {})",
                            self.platform_ids().join(", ")
                        ),
                    })
                }
            },
        };
        let slot = &self.slots[slot_idx];
        let caps = slot.capabilities;
        if (job.deploy.digital_enabled() && !caps.digital)
            || (job.deploy.analog_enabled() && !caps.analog)
        {
            return Err(JobError::Platform {
                job: job.name.clone(),
                platform: slot.id.clone(),
                detail: format!(
                    "deploy target {:?} needs engines the platform lacks \
                     (declared: digital={}, analog={})",
                    job.deploy, caps.digital, caps.analog
                ),
            });
        }
        Ok(slot_idx)
    }

    fn key_in(&self, slot: &PlatformSlot, job: &JobRequest) -> ArtifactKey {
        ArtifactKey::new(
            &slot.id,
            &job.graph,
            job.deploy,
            slot.base.platform(),
            slot.base.lower_options(),
        )
    }

    /// The content-addressed key a job resolves to.
    ///
    /// # Errors
    ///
    /// [`JobError::Platform`] when the job cannot be routed (unknown
    /// platform, or a deploy target outside the platform's
    /// capabilities) — a job with no key has no cache slot.
    pub fn key_of(&self, job: &JobRequest) -> Result<ArtifactKey, JobError> {
        let slot = &self.slots[self.resolve(job)?];
        Ok(self.key_in(slot, job))
    }

    /// This job's estimated admission cost right now (probes its
    /// platform's cache).
    ///
    /// # Errors
    ///
    /// [`JobError::Platform`] when the job cannot be routed.
    pub fn cost_of(&self, job: &JobRequest) -> Result<u64, JobError> {
        let slot = &self.slots[self.resolve(job)?];
        let key = self.key_in(slot, job);
        Ok(estimate_cost(&job.graph, slot.cache.contains(&key)))
    }

    /// Processes one job on the calling thread, through routing and
    /// admission control: the result is [`JobError::Platform`] when the
    /// job cannot be routed and [`JobError::Rejected`] when the service
    /// is saturated or the tenant is over quota.
    pub fn submit(&self, job: JobRequest) -> Result<JobResult, JobError> {
        let slot_idx = self.resolve(&job)?;
        let slot = &self.slots[slot_idx];
        let key = self.key_in(slot, &job);
        let cost = estimate_cost(&job.graph, slot.cache.contains(&key));
        if let Err(rejection) = self.admit(&job.tenant, cost) {
            return Err(self.shed_job(job.name, &job.tenant, cost, rejection));
        }
        let tenant = job.tenant.clone();
        let result = self.process(slot, job, key, 0, ArtifactSource::Resolve);
        self.release(&tenant, cost);
        result
    }

    /// Imports raw model-file bytes into a validated graph, counting
    /// rejections in [`ServiceStats::rejected_import`].
    ///
    /// The importer produces the *same* graph an in-process
    /// [`GraphBuilder`](htvm_ir::GraphBuilder) build of the model
    /// would, so a subsequent [`CompileService::submit`] resolves to
    /// the same [`ArtifactKey`] — file-imported and in-process jobs
    /// share cache entries and coalesce with each other.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Import`] carrying the typed
    /// [`ImportError`] when the bytes are malformed; no input panics.
    pub fn import_model(&self, job: &str, model: &[u8]) -> Result<Graph, JobError> {
        htvm_frontend::import(model).map_err(|error| {
            self.rejected_import.fetch_add(1, Ordering::Relaxed);
            JobError::Import {
                job: job.to_owned(),
                error,
            }
        })
    }

    /// Imports model bytes and submits the resulting compile-only job
    /// through the normal admission/cache path (the `/v1/import` entry
    /// point).
    ///
    /// # Errors
    ///
    /// [`JobError::Import`] for malformed bytes, otherwise whatever
    /// [`CompileService::submit`] returns.
    pub fn submit_model(
        &self,
        name: &str,
        tenant: Option<&str>,
        deploy: DeployConfig,
        model: &[u8],
    ) -> Result<JobResult, JobError> {
        let graph = self.import_model(name, model)?;
        let mut job = JobRequest::compile_only(name, graph, deploy);
        if let Some(tenant) = tenant {
            job = job.with_tenant(tenant);
        }
        self.submit(job)
    }

    /// Schedules a batch through routing, admission control and the
    /// worker pool, returning results in request order.
    ///
    /// Before anything reaches the pool, jobs with identical
    /// [`ArtifactKey`]s are coalesced (one leader, the rest followers —
    /// serviced from the leader's artifact by the leader's worker the
    /// moment it lands; the platform id feeds the key, so jobs for
    /// different platforms never coalesce) and each leader passes
    /// admission control in request order; unroutable jobs get
    /// [`JobError::Platform`] and shed jobs [`JobError::Rejected`]
    /// without ever queuing. Admitted leaders are ordered by
    /// [`SchedPolicy`]: under [`SchedPolicy::CostAware`], cache hits
    /// run before cold compiles, so an expensive miss cannot
    /// head-of-line-block a batch of hits.
    pub fn submit_batch(&self, jobs: Vec<JobRequest>) -> Vec<Result<JobResult, JobError>> {
        let n = jobs.len();
        let epoch = Instant::now();
        let slots: Vec<Mutex<Option<Result<JobResult, JobError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        // Routing + admission + coalescing pass, in request order. A
        // zero-budget cache models "no artifact reuse", so it disables
        // coalescing too (the no-cache bench baseline must really
        // compile each job).
        let coalesce = self.cache_budget_bytes > 0;
        let mut leaders: Vec<Scheduled> = Vec::new();
        let mut lead_of: HashMap<ArtifactKey, usize> = HashMap::new();
        for (index, job) in jobs.into_iter().enumerate() {
            let slot_idx = match self.resolve(&job) {
                Ok(slot_idx) => slot_idx,
                Err(error) => {
                    *slots[index].lock().expect("result slot poisoned") = Some(Err(error));
                    continue;
                }
            };
            let key = self.key_in(&self.slots[slot_idx], &job);
            let cost = if coalesce && lead_of.contains_key(&key) {
                0 // a follower rides its leader's admission cost
            } else {
                estimate_cost(&job.graph, self.slots[slot_idx].cache.contains(&key))
            };
            match self.admit(&job.tenant, cost) {
                Err(rejection) => {
                    let error = self.shed_job(job.name, &job.tenant, cost, rejection);
                    *slots[index].lock().expect("result slot poisoned") = Some(Err(error));
                }
                Ok(()) => match lead_of.get(&key) {
                    Some(&leader) if coalesce => leaders[leader].followers.push((index, job)),
                    _ => {
                        lead_of.insert(key.clone(), leaders.len());
                        leaders.push(Scheduled {
                            index,
                            slot: slot_idx,
                            job,
                            key,
                            cost,
                            followers: Vec::new(),
                        });
                    }
                },
            }
        }

        match self.policy {
            SchedPolicy::Fifo => {} // already in request order
            SchedPolicy::CostAware => leaders.sort_by_key(|s| (s.cost, s.index)),
        }

        let workers = self.workers.min(leaders.len()).max(1);
        let queue: Mutex<VecDeque<Scheduled>> = Mutex::new(leaders.into());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = queue.lock().expect("job queue poisoned").pop_front();
                    let Some(item) = next else { break };
                    let queue_us = epoch.elapsed().as_micros() as u64;
                    let tenant = item.job.tenant.clone();
                    let platform = &self.slots[item.slot];
                    let result = self.process(
                        platform,
                        item.job,
                        item.key.clone(),
                        queue_us,
                        ArtifactSource::Resolve,
                    );
                    self.release(&tenant, item.cost);
                    // Service this leader's followers right here, right
                    // now: they are near-free (an artifact clone plus
                    // any simulation), and running them on the leader's
                    // worker means a follower never occupies a pool
                    // slot waiting for a compile that hasn't started.
                    let lead_artifact = result.as_ref().ok().map(|r| r.artifact.clone());
                    *slots[item.index].lock().expect("result slot poisoned") = Some(result);
                    for (index, job) in item.followers {
                        let queue_us = epoch.elapsed().as_micros() as u64;
                        let tenant = job.tenant.clone();
                        let result = match &lead_artifact {
                            Some(artifact) => self.process(
                                platform,
                                job,
                                item.key.clone(),
                                queue_us,
                                ArtifactSource::Ready(Box::new(artifact.clone())),
                            ),
                            // The leader failed; let the follower find
                            // out for itself (deterministic error per
                            // job, and a fresh attempt might succeed).
                            None => self.process(
                                platform,
                                job,
                                item.key.clone(),
                                queue_us,
                                ArtifactSource::Resolve,
                            ),
                        };
                        self.release(&tenant, 0);
                        *slots[index].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every scheduled job writes its slot")
            })
            .collect()
    }

    /// Admits `cost` units for `tenant`, or returns the typed rejection.
    /// An idle service (nothing queued) always admits, so one
    /// over-budget job can still make progress.
    fn admit(&self, tenant: &str, cost: u64) -> Result<(), Rejection> {
        let mut adm = self.admission.lock().expect("admission poisoned");
        let inflight = adm.tenant_inflight.get(tenant).copied().unwrap_or(0);
        if inflight >= self.tenant_quota {
            return Err(Rejection {
                reason: RejectReason::TenantQuota {
                    tenant: tenant.to_owned(),
                    inflight,
                    quota: self.tenant_quota,
                },
                retry_after_ms: 50,
            });
        }
        if adm.queued_cost > 0 && adm.queued_cost.saturating_add(cost) > self.queue_cost_budget {
            return Err(Rejection {
                reason: RejectReason::QueueBudget {
                    estimated_cost: cost,
                    queued_cost: adm.queued_cost,
                    budget: self.queue_cost_budget,
                },
                retry_after_ms: 50,
            });
        }
        adm.queued_cost = adm.queued_cost.saturating_add(cost);
        *adm.tenant_inflight.entry(tenant.to_owned()).or_insert(0) += 1;
        Ok(())
    }

    /// Returns a finished (or shed-after-admit) job's admission units.
    fn release(&self, tenant: &str, cost: u64) {
        let mut adm = self.admission.lock().expect("admission poisoned");
        adm.queued_cost = adm.queued_cost.saturating_sub(cost);
        if let Some(count) = adm.tenant_inflight.get_mut(tenant) {
            *count -= 1;
            if *count == 0 {
                adm.tenant_inflight.remove(tenant);
            }
        }
    }

    /// Counts and traces a shed, returning the typed error.
    fn shed_job(&self, job: String, tenant: &str, cost: u64, rejection: Rejection) -> JobError {
        self.shed.fetch_add(1, Ordering::Relaxed);
        match rejection.reason {
            RejectReason::QueueBudget { .. } => self.shed_budget.fetch_add(1, Ordering::Relaxed),
            RejectReason::TenantQuota { .. } => self.shed_quota.fetch_add(1, Ordering::Relaxed),
        };
        if self.tracer.is_enabled() {
            let reason = match rejection.reason {
                RejectReason::QueueBudget { .. } => "queue_budget",
                RejectReason::TenantQuota { .. } => "tenant_quota",
            };
            self.tracer.record(
                Span::new(
                    &format!("shed:{job}"),
                    tracks::SERVICE,
                    self.tracer.elapsed_us(),
                    0,
                )
                .with_arg("reason", reason)
                .with_arg("tenant", tenant)
                .with_arg("estimated_cost", cost),
            );
        }
        JobError::Rejected { job, rejection }
    }

    fn process(
        &self,
        slot: &PlatformSlot,
        job: JobRequest,
        key: ArtifactKey,
        queue_us: u64,
        source: ArtifactSource,
    ) -> Result<JobResult, JobError> {
        let started = Instant::now();
        let sched_seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let compiler = slot.base.clone().with_deploy(job.deploy);
        if self.tracer.is_enabled() && queue_us > 0 {
            // The wait is over by the time we learn its length, so
            // record it retroactively: a span ending "now", starting
            // `queue_us` ago, on the same track as the job span.
            let now = self.tracer.elapsed_us();
            self.tracer.record(
                Span::new(
                    &format!("queue:{}", job.name),
                    tracks::SERVICE,
                    now.saturating_sub(queue_us),
                    queue_us,
                )
                .with_arg("tenant", job.tenant.as_str()),
            );
        }
        let mut span = self
            .tracer
            .scope(tracks::SERVICE, &format!("job:{}", job.name));
        span.arg("key", key.id());
        span.arg("queue_us", queue_us);
        span.arg("tenant", job.tenant.as_str());
        span.arg("platform", slot.id.as_str());
        let result = self.compile_and_run(slot, &job, &compiler, &key, source, &mut span);
        slot.jobs.fetch_add(1, Ordering::Relaxed);
        if job.platform.is_some() {
            self.routed_by_platform.fetch_add(1, Ordering::Relaxed);
        }
        span.arg("ok", result.is_ok());
        let (artifact, cache_hit, coalesced, report) = result?;
        Ok(JobResult {
            job: job.name,
            platform: slot.id.clone(),
            key_id: key.id(),
            cache_hit,
            coalesced,
            artifact,
            report,
            queue_us,
            service_us: started.elapsed().as_micros() as u64,
            sched_seq,
        })
    }

    #[allow(clippy::type_complexity)]
    fn compile_and_run(
        &self,
        slot: &PlatformSlot,
        job: &JobRequest,
        compiler: &Compiler,
        key: &ArtifactKey,
        source: ArtifactSource,
        span: &mut htvm_trace::ScopedSpan<'_>,
    ) -> Result<(Artifact, bool, bool, Option<RunReport>), JobError> {
        let (artifact, cache_hit, coalesced) = match source {
            ArtifactSource::Ready(artifact) => {
                slot.coalesced.fetch_add(1, Ordering::Relaxed);
                (*artifact, false, true)
            }
            ArtifactSource::Resolve => self.artifact_for(slot, job, compiler, key)?,
        };
        span.arg("cache_hit", cache_hit);
        span.arg("coalesced", coalesced);
        let report = match &job.run {
            Some(spec) => {
                let machine = Machine::new(*compiler.platform());
                let report = machine
                    .run_bounded(
                        &artifact.program,
                        &spec.inputs,
                        &spec.faults,
                        spec.deadline_cycles,
                    )
                    .map_err(|error| JobError::Run {
                        job: job.name.clone(),
                        error,
                    })?;
                span.arg("cycles", report.total_cycles());
                Some(report)
            }
            None => None,
        };
        Ok((artifact, cache_hit, coalesced, report))
    }

    /// Fetches the job's artifact from its platform's cache or compiles
    /// it, coalescing concurrent misses on the same key: exactly one
    /// thread (the *leader*) compiles while the rest wait and take the
    /// leader's artifact directly. Only threads that actually probe the
    /// cache touch its counters — a leader registers one miss, a repeat
    /// after landing one hit, and a coalesced follower none (it shows
    /// up in [`ServiceStats::coalesced`] instead) — so
    /// `hits + misses + coalesced == jobs` deterministically even under
    /// races, per platform, with `misses` exactly the number of
    /// distinct compiles. A leader's artifact is also spilled to the
    /// platform's [`PersistStore`] when persistence is on.
    fn artifact_for(
        &self,
        slot: &PlatformSlot,
        job: &JobRequest,
        compiler: &Compiler,
        key: &ArtifactKey,
    ) -> Result<(Artifact, bool, bool), JobError> {
        // A zero-budget cache models "no artifact reuse at all" — the
        // bench baseline. Single-flight coalescing is reuse, so it is
        // disabled too: every job probes (and misses) the cache, then
        // compiles for itself. Nothing is persisted either: a no-reuse
        // service has nothing to warm-start from.
        if self.cache_budget_bytes == 0 {
            let cached = slot.cache.get(key);
            debug_assert!(cached.is_none(), "a zero-budget cache admits nothing");
            drop(cached);
            let artifact = compiler
                .compile(&job.graph)
                .map_err(|error| JobError::Compile {
                    job: job.name.clone(),
                    error,
                })?;
            // Attempt the insert anyway (it is rejected as oversized):
            // a no-reuse service still pays the serialize-to-measure
            // cost a caching one would, so cache-on/off comparisons
            // isolate *reuse*, and the oversized counter keeps exact.
            slot.cache.insert(key.clone(), &artifact);
            return Ok((artifact, false, false));
        }
        loop {
            // One critical section decides this thread's role: follower
            // of an in-flight compile (no cache touch), cache hit, or
            // newly appointed leader.
            let flight = {
                let mut inflight = slot.inflight.lock().expect("inflight map poisoned");
                if let Some(flight) = inflight.get(key) {
                    Arc::clone(flight)
                } else if let Some(artifact) = slot.cache.get(key) {
                    return Ok((artifact, true, false));
                } else {
                    let flight = Arc::new(Flight::new());
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    drop(inflight);
                    let compiled = compiler.compile(&job.graph);
                    // Publish before landing the flight, so repeats
                    // that arrive after the landing find the artifact
                    // resident; followers already waiting take it from
                    // the flight itself. The disk spill rides the same
                    // publish: one durable write per distinct compile.
                    if let Ok(artifact) = &compiled {
                        slot.cache.insert(key.clone(), artifact);
                        if let Some(persist) = &slot.persist {
                            persist.write(key, artifact);
                        }
                    }
                    slot.inflight
                        .lock()
                        .expect("inflight map poisoned")
                        .remove(key);
                    flight.land(compiled.as_ref().ok().cloned());
                    let artifact = compiled.map_err(|error| JobError::Compile {
                        job: job.name.clone(),
                        error,
                    })?;
                    return Ok((artifact, false, false));
                }
            };
            match flight.wait() {
                Some(artifact) => {
                    slot.coalesced.fetch_add(1, Ordering::Relaxed);
                    return Ok((artifact, false, true));
                }
                // The leader failed; re-enter and compile for ourselves
                // (our own attempt reports its own typed error).
                None => continue,
            }
        }
    }

    /// A snapshot of the service counters: fleet-wide sums plus the
    /// per-platform breakdown (including each platform's shared
    /// tile-cache and persistent-store counters).
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let platforms: Vec<PlatformStats> = self
            .slots
            .iter()
            .map(|slot| PlatformStats {
                platform: slot.id.clone(),
                jobs: slot.jobs.load(Ordering::Relaxed),
                coalesced: slot.coalesced.load(Ordering::Relaxed),
                artifact_cache: slot.cache.stats(),
                tile_cache: slot.base.tile_cache().stats(),
                persist: slot.persist_stats(),
            })
            .collect();
        let mut agg = ServiceStats {
            shed: self.shed.load(Ordering::Relaxed),
            shed_budget: self.shed_budget.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            rejected_import: self.rejected_import.load(Ordering::Relaxed),
            routed_by_platform: self.routed_by_platform.load(Ordering::Relaxed),
            ..ServiceStats::default()
        };
        for p in &platforms {
            agg.jobs += p.jobs;
            agg.coalesced += p.coalesced;
            agg.persist_writes += p.persist.writes;
            agg.persist_load_ok += p.persist.load_ok;
            agg.persist_load_skipped += p.persist.load_skipped;
            let a = &mut agg.artifact_cache;
            a.entries += p.artifact_cache.entries;
            a.bytes += p.artifact_cache.bytes;
            a.budget_bytes += p.artifact_cache.budget_bytes;
            a.hits += p.artifact_cache.hits;
            a.misses += p.artifact_cache.misses;
            a.insertions += p.artifact_cache.insertions;
            a.evictions += p.artifact_cache.evictions;
            a.oversized += p.artifact_cache.oversized;
            let t = &mut agg.tile_cache;
            t.entries += p.tile_cache.entries;
            t.solves += p.tile_cache.solves;
            t.hits += p.tile_cache.hits;
            t.negatives += p.tile_cache.negatives;
            t.negative_hits += p.tile_cache.negative_hits;
        }
        agg.platforms = platforms;
        agg
    }

    /// Drains everything traced so far (job, queue and shed spans plus
    /// compiler phase spans) into one wall-clock trace on the
    /// [`tracks::serve`] track table.
    #[must_use]
    pub fn take_trace(&self) -> Trace {
        self.tracer.take(TimeDomain::WallMicros, tracks::serve())
    }
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService")
            .field("platforms", &self.platform_ids())
            .field("workers", &self.workers)
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}
