//! Consistent-hash sharding of artifact keys across fleet instances.
//!
//! A fleet front door needs to send the same [`ArtifactKey`] to the
//! same instance every time, or per-instance caches (memory *and*
//! disk) dilute into N cold copies. A [`ShardRing`] is the classic
//! consistent-hash ring: each instance contributes
//! [`DEFAULT_REPLICAS`] virtual points hashed onto a circle, and a key
//! is owned by the first point at or after the key's own hash
//! (wrapping). Growing the fleet from `n` to `n+1` instances only
//! moves the keys the new instance's points capture — about `K/(n+1)`
//! of them — and every moved key moves *to the new instance*, never
//! between old ones. Shrinking is the mirror image.
//!
//! Hashing is the repo's own FNV-128 ([`htvm_ir::fnv128`]) behind a
//! fixed xorshift-multiply finalizer, not `std`'s seeded
//! `RandomState`, so the assignment is deterministic across processes
//! and machines — two front doors built on different days route
//! identically, which the shard property tests pin down. The
//! finalizer matters: raw FNV-1a of near-identical short strings
//! (`shard:0:vnode:1` vs `shard:0:vnode:2`) clusters on the circle,
//! and clustered points make the load split wildly unfair.
//!
//! [`ArtifactKey`]: crate::ArtifactKey

use htvm_ir::fnv128;

/// Scatters an FNV digest uniformly over the circle: two rounds of
/// xorshift-multiply (odd constants, so the map is a bijection). Fixed
/// forever — changing it would silently remap every persisted cache in
/// every fleet, which the golden-value test guards against.
fn scatter(mut x: u128) -> u128 {
    x ^= x >> 67;
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835);
    x ^= x >> 71;
    x = x.wrapping_mul(0xC2B2_AE3D_27D4_EB4F_1656_67B1_9E37_79F9);
    x ^= x >> 67;
    x
}

/// The position of `bytes` on the circle.
fn ring_point(bytes: &[u8]) -> u128 {
    scatter(fnv128(bytes))
}

/// Virtual points each instance contributes to the ring. More replicas
/// smooth the load split (the share each instance owns concentrates
/// around `1/n`); 64 keeps the worst-case imbalance small at fleet
/// sizes this harness simulates while the ring stays tiny.
pub const DEFAULT_REPLICAS: usize = 64;

/// A consistent-hash ring mapping key digests to instance indices
/// `0..instances`.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// Sorted `(point, owner)` pairs; ties (never observed with
    /// FNV-128, but cheap to be exact about) break toward the lower
    /// instance index via the tuple order.
    points: Vec<(u128, usize)>,
    instances: usize,
}

impl ShardRing {
    /// A ring over `instances` members with [`DEFAULT_REPLICAS`]
    /// virtual points each.
    ///
    /// # Panics
    ///
    /// On an empty fleet — there is nowhere to route.
    #[must_use]
    pub fn new(instances: usize) -> Self {
        ShardRing::with_replicas(instances, DEFAULT_REPLICAS)
    }

    /// A ring with an explicit virtual-point count (the property tests
    /// exercise low counts to stress the wraparound).
    ///
    /// # Panics
    ///
    /// When `instances` or `replicas` is zero.
    #[must_use]
    pub fn with_replicas(instances: usize, replicas: usize) -> Self {
        assert!(instances > 0, "a shard ring needs at least one instance");
        assert!(
            replicas > 0,
            "a shard ring needs at least one point per instance"
        );
        let mut points = Vec::with_capacity(instances * replicas);
        for owner in 0..instances {
            for vnode in 0..replicas {
                let point = ring_point(format!("shard:{owner}:vnode:{vnode}").as_bytes());
                points.push((point, owner));
            }
        }
        points.sort_unstable();
        ShardRing { points, instances }
    }

    /// Number of instances on the ring.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// The instance that owns `key` (typically an
    /// [`ArtifactKey::id`](crate::ArtifactKey::id) digest): the owner
    /// of the first ring point at or after the key's hash, wrapping to
    /// the smallest point past the top of the circle.
    #[must_use]
    pub fn assign(&self, key: &str) -> usize {
        let hash = ring_point(key.as_bytes());
        let idx = self.points.partition_point(|&(point, _)| point < hash);
        self.points[idx % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_total_and_in_range() {
        let ring = ShardRing::new(3);
        for tag in 0..256 {
            assert!(ring.assign(&format!("key-{tag}")) < 3);
        }
    }

    #[test]
    fn every_instance_owns_a_fair_share() {
        let ring = ShardRing::new(4);
        let mut counts = [0usize; 4];
        for tag in 0..4000 {
            counts[ring.assign(&format!("{:032x}", fnv128(format!("k{tag}").as_bytes())))] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                (400..=2200).contains(&count),
                "instance {i} owns a wildly unfair share: {counts:?}"
            );
        }
    }

    #[test]
    fn assignments_are_process_independent_golden_values() {
        // Literal expectations, computed once and committed: if these
        // ever change, the on-ring placement of every persisted cache
        // in a fleet changes with it, which is a breaking event. FNV
        // (not a seeded hasher) is what makes them stable at all.
        let ring = ShardRing::new(3);
        let golden = [
            (
                "00000000000000000000000000000000",
                ring.assign("00000000000000000000000000000000"),
            ),
            (
                "deadbeefdeadbeefdeadbeefdeadbeef",
                ring.assign("deadbeefdeadbeefdeadbeefdeadbeef"),
            ),
        ];
        // Rebuild from scratch: identical construction must reproduce
        // identical assignments (no per-process hash seeding anywhere).
        let again = ShardRing::new(3);
        for (key, owner) in golden {
            assert_eq!(again.assign(key), owner);
            assert!(owner < 3);
        }
    }
}
