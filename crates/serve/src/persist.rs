//! The on-disk spill of the artifact cache: restart durability.
//!
//! An in-memory [`ArtifactCache`] dies with its process, so every
//! service restart used to be a cold-compile storm. A [`PersistStore`]
//! writes each freshly compiled artifact to disk and re-admits the
//! whole directory into the cache at startup, making restarts *warm*:
//! previously served keys hit without recompiling, and the returned
//! bytes are identical to the pre-restart artifacts because the entry
//! records the exact serialized artifact.
//!
//! # Layout
//!
//! ```text
//! <root>/v1/<platform_id>/<key_id>.json
//! ```
//!
//! `v1` is the layout version ([`CACHE_LAYOUT_DIR`]); `<key_id>` is the
//! 32-hex-digit [`ArtifactKey::id`]. Each entry file is one JSON
//! envelope: the cache-format version ([`CACHE_FORMAT_VERSION`]), the
//! compiler stamp ([`compiler_stamp`]), the key digest, the **full**
//! key bytes as hex (cache lookup compares bytes, never digests), and
//! the artifact.
//!
//! # Durability and corruption policy
//!
//! Writes are atomic: the entry is written to a `.tmp` sibling and
//! `rename`d into place, so a crash mid-write never leaves a partial
//! `.json` entry. Loading is corruption-tolerant by construction —
//! unparseable JSON, a format or compiler-stamp mismatch, a digest that
//! does not match the recorded key bytes, or a filename that does not
//! match the digest all cause the entry to be **skipped and counted**
//! ([`PersistStats::load_skipped`]), never a crash. A version bump in
//! either stamp deliberately invalidates old entries the same way.

use crate::cache::ArtifactCache;
use crate::hexfmt;
use crate::key::ArtifactKey;
use htvm::Artifact;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the entry-envelope schema. Entries recorded under any
/// other version are skipped (counted) at load.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Name of the layout-version directory under the persistence root.
/// Bumping the on-disk layout means a new directory, so mixed-version
/// fleets never read each other's entries.
pub const CACHE_LAYOUT_DIR: &str = "v1";

/// The compiler identity baked into every entry. Artifacts are only
/// byte-stable within one compiler version, so entries written by any
/// other build are skipped (counted) at load instead of being trusted.
#[must_use]
pub fn compiler_stamp() -> String {
    format!("htvm-serve {}", env!("CARGO_PKG_VERSION"))
}

/// Counters of one platform's persistent store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistStats {
    /// Entries durably written (tmp + rename completed).
    pub writes: u64,
    /// Write attempts that failed on an io error (the artifact is still
    /// served from memory; only durability was lost).
    pub write_errors: u64,
    /// Entries validated and re-admitted into the cache at load.
    pub load_ok: u64,
    /// Entries skipped at load: unparseable, stamp mismatch, digest
    /// mismatch, misnamed, or refused admission by the cache budget.
    pub load_skipped: u64,
}

/// The JSON envelope of one on-disk entry. The artifact rides as a raw
/// JSON value so loading can validate the header (format, stamp,
/// digest) *before* committing to the artifact schema — a stale entry
/// from an older build is skipped on its stamp even when the artifact
/// shape changed underneath it.
#[derive(Serialize, Deserialize)]
struct PersistEntry {
    format: u32,
    compiler: String,
    key_id: String,
    key_hex: String,
    artifact: serde_json::Value,
}

/// One platform's slice of the on-disk artifact cache. Thread-safe:
/// counters are atomic, and the atomic rename makes concurrent writers
/// of the same key last-writer-wins with no torn entries.
pub struct PersistStore {
    dir: PathBuf,
    writes: AtomicU64,
    write_errors: AtomicU64,
    load_ok: AtomicU64,
    load_skipped: AtomicU64,
}

impl PersistStore {
    /// Opens (creating if needed) the store for one platform under the
    /// versioned layout: `<root>/v1/<platform_id>/`.
    ///
    /// # Errors
    ///
    /// The underlying `create_dir_all` error when the directory cannot
    /// be created — a service whose persistence root is unusable should
    /// find out at startup, not at the first write.
    pub fn open(root: &Path, platform_id: &str) -> std::io::Result<Self> {
        let dir = root.join(CACHE_LAYOUT_DIR).join(platform_id);
        std::fs::create_dir_all(&dir)?;
        Ok(PersistStore {
            dir,
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            load_ok: AtomicU64::new(0),
            load_skipped: AtomicU64::new(0),
        })
    }

    /// The platform directory entries live in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably records one artifact: serialize the envelope, write it
    /// to a `.tmp` sibling, `rename` into place. Returns whether the
    /// entry landed; failures only cost durability (and a counter),
    /// never the request.
    pub fn write(&self, key: &ArtifactKey, artifact: &Artifact) -> bool {
        let entry = PersistEntry {
            format: CACHE_FORMAT_VERSION,
            compiler: compiler_stamp(),
            key_id: key.id(),
            key_hex: hexfmt::encode(key.as_bytes()),
            artifact: serde_json::to_value(artifact),
        };
        let json = serde_json::to_string(&entry).expect("artifacts serialize infallibly");
        let tmp = self.dir.join(format!("{}.tmp", entry.key_id));
        let path = self.dir.join(format!("{}.json", entry.key_id));
        let landed = std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_ok();
        if landed {
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            let _ = std::fs::remove_file(&tmp);
        }
        landed
    }

    /// Re-admits every valid on-disk entry into `cache`, in sorted
    /// filename order so admission (and any budget eviction) is
    /// deterministic. Invalid entries are skipped and counted — a
    /// corrupt file can cost its own entry, never the startup.
    pub fn load_into(&self, cache: &ArtifactCache) -> PersistStats {
        let mut files: Vec<PathBuf> = match std::fs::read_dir(&self.dir) {
            Ok(dir) => dir
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json") && p.is_file())
                .collect(),
            // An unreadable directory re-admits nothing; the service
            // still starts (cold) and writes will surface io errors.
            Err(_) => Vec::new(),
        };
        files.sort();
        for path in files {
            let admitted = match self.load_one(&path) {
                Some((key, artifact)) => cache.insert(key, &artifact),
                None => false,
            };
            if admitted {
                self.load_ok.fetch_add(1, Ordering::Relaxed);
            } else {
                self.load_skipped.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stats()
    }

    /// Validates one entry file end to end; `None` means skip.
    fn load_one(&self, path: &Path) -> Option<(ArtifactKey, Artifact)> {
        let json = std::fs::read_to_string(path).ok()?;
        let entry: PersistEntry = serde_json::from_str(&json).ok()?;
        if entry.format != CACHE_FORMAT_VERSION || entry.compiler != compiler_stamp() {
            return None;
        }
        let key = ArtifactKey::from_bytes(hexfmt::decode(&entry.key_hex).ok()?);
        // The digest must match the key bytes, and the filename must
        // match the digest — a renamed or hand-edited entry fails here.
        if key.id() != entry.key_id {
            return None;
        }
        if path.file_name()?.to_str()? != format!("{}.json", entry.key_id) {
            return None;
        }
        // The vendored serde_json has no `from_value`; round-tripping
        // the payload through a string is the supported conversion.
        let payload = serde_json::to_string(&entry.artifact).ok()?;
        let artifact: Artifact = serde_json::from_str(&payload).ok()?;
        Some((key, artifact))
    }

    /// A snapshot of the store's counters.
    #[must_use]
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            load_ok: self.load_ok.load(Ordering::Relaxed),
            load_skipped: self.load_skipped.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for PersistStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}
