//! A simulated multi-instance serving fleet, for restart soaks.
//!
//! Real fleet deployments run N service instances behind a
//! key-affinity router; what this module simulates is exactly that
//! shape in one process: a [`Fleet`] owns N [`CompileService`]
//! instances, each with its *own* persistence directory under one
//! root, and routes every job by consistent-hash of its
//! [`ArtifactKey`] digest ([`ShardRing`]) so a given key always lands
//! on the same instance. [`Fleet::restart`] drops one instance and
//! reboots it from its persistence directory — the simulated
//! kill-and-restart the warm-start soak and the `fleet` CI job gate
//! on: a restarted instance re-admits its disk entries, so previously
//! served keys hit (zero recompiles) with byte-identical artifacts.
//!
//! [`ArtifactKey`]: crate::ArtifactKey

use crate::service::{CompileService, JobError, JobRequest, JobResult, ServeConfig, ServiceStats};
use crate::shard::ShardRing;
use std::path::{Path, PathBuf};

/// One instance of the simulated fleet.
struct FleetInstance {
    name: String,
    service: CompileService,
    restarts: u64,
}

impl FleetInstance {
    fn boot(index: usize, root: &Path, config: &ServeConfig) -> Self {
        let name = format!("instance-{index}");
        let mut config = config.clone();
        config.persist_root = Some(root.join(&name));
        FleetInstance {
            name,
            service: CompileService::new(config),
            restarts: 0,
        }
    }
}

/// Counters of one fleet instance, labeled for reports.
#[derive(Debug, Clone)]
pub struct InstanceStats {
    /// The instance's name (`instance-<i>`).
    pub name: String,
    /// How many times [`Fleet::restart`] rebooted it.
    pub restarts: u64,
    /// The instance's service counters.
    pub stats: ServiceStats,
}

/// N sharded [`CompileService`] instances over one persistence root.
pub struct Fleet {
    config: ServeConfig,
    root: PathBuf,
    ring: ShardRing,
    instances: Vec<FleetInstance>,
}

impl Fleet {
    /// Boots `instances` services, each persisting under
    /// `<root>/instance-<i>/`. The config's own `persist_root` is
    /// overridden per instance; everything else (manifest, budgets,
    /// policy) is shared.
    ///
    /// # Panics
    ///
    /// When `instances` is zero, or on whatever
    /// [`CompileService::new`] panics on (invalid manifest, uncreatable
    /// persistence directory).
    #[must_use]
    pub fn new(instances: usize, root: &Path, config: ServeConfig) -> Self {
        assert!(instances > 0, "a fleet needs at least one instance");
        let ring = ShardRing::new(instances);
        let instances = (0..instances)
            .map(|i| FleetInstance::boot(i, root, &config))
            .collect();
        Fleet {
            config,
            root: root.to_owned(),
            ring,
            instances,
        }
    }

    /// Number of instances in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the fleet is empty (never true: construction requires at
    /// least one instance).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Direct access to one instance's service (for stats or
    /// out-of-band submits in tests).
    #[must_use]
    pub fn instance(&self, index: usize) -> &CompileService {
        &self.instances[index].service
    }

    /// The instance a job routes to: consistent-hash of its
    /// [`ArtifactKey`](crate::ArtifactKey) digest. Every instance
    /// shares the manifest, so any of them computes the same key; an
    /// unroutable job fails typed, exactly as `submit` would.
    ///
    /// # Errors
    ///
    /// [`JobError::Platform`] when the job cannot be routed to a
    /// platform (and so has no key to shard on).
    pub fn assign(&self, job: &JobRequest) -> Result<usize, JobError> {
        let key = self.instances[0].service.key_of(job)?;
        Ok(self.ring.assign(&key.id()))
    }

    /// Routes one job by key affinity and submits it, returning the
    /// serving instance's index alongside the result.
    ///
    /// # Errors
    ///
    /// Whatever routing or [`CompileService::submit`] reports.
    pub fn submit(&self, job: JobRequest) -> Result<(usize, JobResult), JobError> {
        let index = self.assign(&job)?;
        self.instances[index]
            .service
            .submit(job)
            .map(|result| (index, result))
    }

    /// Kills and reboots one instance from its persistence directory —
    /// the simulated crash/deploy restart. The old service (memory
    /// cache, tile caches, counters) is dropped; the new one re-admits
    /// whatever the old one spilled to disk, so its first hit on a
    /// previously served key costs no recompile.
    pub fn restart(&mut self, index: usize) {
        let restarts = self.instances[index].restarts + 1;
        let mut rebooted = FleetInstance::boot(index, &self.root, &self.config);
        rebooted.restarts = restarts;
        self.instances[index] = rebooted;
    }

    /// Per-instance counters, in instance order.
    #[must_use]
    pub fn stats(&self) -> Vec<InstanceStats> {
        self.instances
            .iter()
            .map(|instance| InstanceStats {
                name: instance.name.clone(),
                restarts: instance.restarts,
                stats: instance.service.stats(),
            })
            .collect()
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("instances", &self.instances.len())
            .field("root", &self.root)
            .finish()
    }
}
