//! Minimal hex encode/decode shared by the wire schema and the
//! persistent cache (which records full key bytes as hex so entry
//! files stay greppable text).

/// Hex-encodes bytes as lowercase digits.
pub(crate) fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
    }
    out
}

/// Decodes lowercase/uppercase hex into bytes.
pub(crate) fn decode(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err(format!("odd length {}", hex.len()));
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("invalid hex digit {:?}", c as char)),
        }
    };
    hex.as_bytes()
        .chunks_exact(2)
        .map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}
