//! HTTP/1.1 request framing and response writing, dependency-free.
//!
//! The front door speaks the small, boring subset of HTTP/1.1 a JSON
//! compile API needs: request line + headers + `Content-Length` body,
//! keep-alive by default (1.0 opts in, 1.1 opts out), no chunked
//! transfer coding, no trailers, no upgrades. Everything a client can
//! get wrong maps to a typed [`FrameError`] that the server renders as
//! a JSON error body with the matching status code.

use std::io::{BufRead, Write};

/// Upper bound on the request line plus headers, together (a defense
/// against header floods; generous for a JSON API).
const MAX_HEAD_BYTES: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target as received (path + optional query).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The request path, with any query string stripped.
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Why a request could not be framed. Each variant carries the HTTP
/// status the server answers with.
#[derive(Debug)]
pub enum FrameError {
    /// The request line was not `METHOD TARGET HTTP/1.x`.
    BadRequestLine(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// `Content-Length` was present but not a number.
    BadContentLength(String),
    /// The declared body exceeds the configured limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// Only HTTP/1.0 and HTTP/1.1 are spoken here.
    UnsupportedVersion(String),
    /// `Transfer-Encoding` (chunked uploads) is not supported.
    UnsupportedTransferEncoding,
    /// The head section exceeded the 64 KiB `MAX_HEAD_BYTES` cap.
    HeadTooLarge,
    /// The peer closed mid-request (a clean close *between* requests is
    /// not an error and is reported as `Ok(None)`).
    UnexpectedEof,
    /// Underlying socket error.
    Io(std::io::Error),
}

impl FrameError {
    /// The HTTP status code this framing error answers with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            FrameError::BodyTooLarge { .. } | FrameError::HeadTooLarge => 413,
            FrameError::UnsupportedVersion(_) => 505,
            FrameError::UnsupportedTransferEncoding => 501,
            FrameError::UnexpectedEof | FrameError::Io(_) => 400,
            _ => 400,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadRequestLine(line) => write!(f, "malformed request line {line:?}"),
            FrameError::BadHeader(line) => write!(f, "malformed header {line:?}"),
            FrameError::BadContentLength(v) => write!(f, "bad Content-Length {v:?}"),
            FrameError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            FrameError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported; send Content-Length")
            }
            FrameError::HeadTooLarge => write!(f, "request head too large"),
            FrameError::UnexpectedEof => write!(f, "connection closed mid-request"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one request off the wire. `Ok(None)` is a clean close between
/// requests (keep-alive peer went away); everything else that isn't a
/// full request is a [`FrameError`].
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Option<Request>, FrameError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, &mut head_bytes)? {
        None => return Ok(None),
        Some(line) if line.is_empty() => match read_line(reader, &mut head_bytes)? {
            // Tolerate one stray CRLF between pipelined requests.
            None => return Ok(None),
            Some(line) if line.is_empty() => return Err(FrameError::BadRequestLine(line)),
            Some(line) => line,
        },
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_owned(), t.to_owned(), v.to_owned()),
        _ => return Err(FrameError::BadRequestLine(request_line)),
    };
    let http11 = match version.as_str() {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(FrameError::UnsupportedVersion(version)),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_bytes)?.ok_or(FrameError::UnexpectedEof)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| FrameError::BadHeader(line.clone()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method,
        target,
        http11,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(FrameError::UnsupportedTransferEncoding);
    }
    let declared = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| FrameError::BadContentLength(v.to_owned()))?,
    };
    if declared > max_body_bytes {
        return Err(FrameError::BodyTooLarge {
            declared,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; declared];
    if declared > 0 {
        std::io::Read::read_exact(reader, &mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                FrameError::UnexpectedEof
            } else {
                FrameError::Io(e)
            }
        })?;
    }
    Ok(Some(Request { body, ..request }))
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. `None` on clean EOF at a line boundary.
fn read_line(
    reader: &mut impl BufRead,
    head_bytes: &mut usize,
) -> Result<Option<String>, FrameError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(FrameError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(FrameError::HeadTooLarge);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// The reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one response with a JSON body and correct framing headers.
/// `extra_headers` are emitted verbatim (e.g. `Retry-After`).
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &[u8],
    extra_headers: &[(&str, String)],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(writer, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(writer, "Content-Type: application/json\r\n")?;
    write!(writer, "Content-Length: {}\r\n", body.len())?;
    write!(
        writer,
        "Connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, FrameError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1 << 20)
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let req = parse("POST /v1/compile HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nX-Tenant: acme\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/compile");
        assert!(req.http11);
        assert_eq!(req.header("x-tenant"), Some("acme"));
        assert_eq!(req.header("X-TENANT"), Some("acme"));
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn keep_alive_semantics_per_version() {
        let close11 = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close11.keep_alive());
        let plain10 = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!plain10.keep_alive(), "HTTP/1.0 defaults to close");
        let ka10 = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(ka10.keep_alive());
    }

    #[test]
    fn clean_eof_is_none_and_midstream_eof_is_error() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(FrameError::UnexpectedEof)
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: x"),
            Err(FrameError::UnexpectedEof)
        ));
    }

    #[test]
    fn typed_errors_map_to_statuses() {
        assert_eq!(parse("nonsense\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse("GET / HTTP/2\r\n\r\n").unwrap_err().status(), 505);
        assert_eq!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status(),
            501
        );
        let big = read_request(
            &mut BufReader::new("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n".as_bytes()),
            10,
        );
        assert!(matches!(
            big,
            Err(FrameError::BodyTooLarge {
                declared: 100,
                limit: 10
            })
        ));
        assert_eq!(big.unwrap_err().status(), 413);
    }

    #[test]
    fn pipelined_requests_frame_individually() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut reader = BufReader::new(raw.as_bytes());
        let a = read_request(&mut reader, 1 << 20).unwrap().unwrap();
        assert_eq!((a.method.as_str(), a.path()), ("GET", "/a"));
        let b = read_request(&mut reader, 1 << 20).unwrap().unwrap();
        assert_eq!((b.method.as_str(), b.path()), ("POST", "/b"));
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut reader, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn responses_are_framed_with_length_and_connection() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            b"{\"a\":1}",
            &[("Retry-After", "1".into())],
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n{\"a\":1}"));
    }
}
