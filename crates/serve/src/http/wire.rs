//! The JSON wire schema of the front door.
//!
//! Requests and responses reuse the crate's existing serde types
//! (`Graph`, `DeployConfig`, `Artifact`, `ServiceStats`, `Rejection`)
//! so a compile driven over HTTP is byte-identical to one driven
//! in-process. Errors are a single typed envelope ([`WireError`])
//! whose `status` always matches the HTTP status line, so clients can
//! switch on either.

use crate::service::{CompileService, JobError, JobRequest, JobResult, Rejection};
use htvm::{Artifact, DeployConfig};
use htvm_ir::Graph;
use serde::{Deserialize, Serialize};

/// `POST /v1/compile` body: one compile job.
///
/// The graph arrives either as JSON (`graph`, the `htvm_ir::Graph`
/// schema) or as a hex-encoded HTF model file (`model_hex`, the
/// `htvm-frontend` format) — exactly one of the two. Raw (non-hex)
/// model bytes go to `POST /v1/import` instead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireJob {
    /// Client-chosen label, echoed in the response and trace spans.
    pub name: String,
    /// Tenant for admission accounting; defaults to `"anon"`.
    #[serde(default)]
    pub tenant: Option<String>,
    /// Manifest id of the platform to compile for; defaults to the
    /// service's default platform. An id the manifest does not declare
    /// fails typed with `422 platform_error`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub platform: Option<String>,
    /// The quantized graph to compile, as JSON.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub graph: Option<Graph>,
    /// Hex-encoded HTF model-file bytes, imported server-side.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub model_hex: Option<String>,
    /// Deploy target.
    pub deploy: DeployConfig,
    /// Include the full serialized artifact in the response (they can
    /// be large; default is metadata only).
    #[serde(default)]
    pub include_artifact: bool,
}

impl WireJob {
    /// Converts the wire job into a service request, importing
    /// `model_hex` through `service` when the graph arrives as a model
    /// file.
    ///
    /// # Errors
    ///
    /// `400` when neither or both of `graph`/`model_hex` are set or the
    /// hex is malformed; `422 import_error` when the decoded model
    /// bytes fail to import (counted in the service's
    /// `rejected_import`).
    pub fn into_request(self, service: &CompileService) -> Result<JobRequest, WireError> {
        let graph = match (self.graph, self.model_hex) {
            (Some(_), Some(_)) => {
                return Err(WireError::new(
                    400,
                    "bad_request",
                    format!("job '{}' sets both graph and model_hex", self.name),
                ))
            }
            (None, None) => {
                return Err(WireError::new(
                    400,
                    "bad_request",
                    format!("job '{}' sets neither graph nor model_hex", self.name),
                ))
            }
            (Some(graph), None) => graph,
            (None, Some(hex)) => {
                let bytes = decode_hex(&hex).map_err(|detail| {
                    WireError::new(
                        400,
                        "bad_request",
                        format!("job '{}': malformed model_hex: {detail}", self.name),
                    )
                })?;
                service
                    .import_model(&self.name, &bytes)
                    .map_err(|e| WireError::from_job_error(&e))?
            }
        };
        let mut request = JobRequest::compile_only(&self.name, graph, self.deploy);
        if let Some(tenant) = self.tenant {
            request = request.with_tenant(&tenant);
        }
        if let Some(platform) = self.platform {
            request = request.on_platform(&platform);
        }
        Ok(request)
    }
}

/// Decodes lowercase/uppercase hex into bytes.
fn decode_hex(hex: &str) -> Result<Vec<u8>, String> {
    crate::hexfmt::decode(hex.trim())
}

/// Hex-encodes model bytes for [`WireJob::model_hex`].
#[must_use]
pub fn encode_hex(bytes: &[u8]) -> String {
    crate::hexfmt::encode(bytes)
}

/// `POST /v1/batch` body: jobs scheduled together, so in-batch
/// coalescing and cost-aware ordering apply across them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireBatch {
    /// The jobs, in request order; results come back in the same order.
    pub jobs: Vec<WireJob>,
}

/// One completed job on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireResult {
    /// The job's label, echoed from the request.
    pub job: String,
    /// Display digest of the job's cache key.
    pub key_id: String,
    /// Whether the artifact came from the cache.
    pub cache_hit: bool,
    /// Whether the job was coalesced onto another job's compile.
    pub coalesced: bool,
    /// Microseconds queued before a worker picked the job up.
    pub queue_us: u64,
    /// Microseconds of service time.
    pub service_us: u64,
    /// The artifact, when the request asked for it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub artifact: Option<Artifact>,
}

impl WireResult {
    /// Converts a service result, optionally attaching the artifact.
    #[must_use]
    pub fn from_result(result: JobResult, include_artifact: bool) -> Self {
        WireResult {
            job: result.job,
            key_id: result.key_id,
            cache_hit: result.cache_hit,
            coalesced: result.coalesced,
            queue_us: result.queue_us,
            service_us: result.service_us,
            artifact: include_artifact.then_some(result.artifact),
        }
    }
}

/// One per-job outcome in a batch response: exactly one of `result`
/// and `error` is set (an `Ok`/`Err` pair spelled with two `Option`s,
/// which keeps the wire shape a plain object in every JSON client).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireBatchEntry {
    /// The completed job, when it succeeded.
    #[serde(default)]
    pub result: Option<WireResult>,
    /// The typed error, when it failed or was shed.
    #[serde(default)]
    pub error: Option<WireError>,
}

impl WireBatchEntry {
    /// Wraps one service outcome.
    #[must_use]
    pub fn from_outcome(outcome: Result<WireResult, WireError>) -> Self {
        match outcome {
            Ok(result) => WireBatchEntry {
                result: Some(result),
                error: None,
            },
            Err(error) => WireBatchEntry {
                result: None,
                error: Some(error),
            },
        }
    }
}

/// `POST /v1/batch` response: per-job outcomes in request order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireBatchResult {
    /// One entry per submitted job, in request order.
    pub results: Vec<WireBatchEntry>,
}

/// The typed error envelope every non-2xx response carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireError {
    /// HTTP status (also on the status line for top-level errors).
    pub status: u16,
    /// Machine-readable kind: `bad_request`, `not_found`,
    /// `method_not_allowed`, `payload_too_large`, `rejected`,
    /// `compile_error`, `run_error`, `import_error`, `platform_error`,
    /// `internal`.
    /// For `import_error`, `detail` leads with the
    /// `htvm_frontend::ImportError` variant name (`Truncated`,
    /// `OutOfBounds`, `BadMagic`, …).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// The structured rejection, for `kind == "rejected"` (HTTP 429).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rejection: Option<Rejection>,
}

impl WireError {
    /// A plain error with no rejection payload.
    #[must_use]
    pub fn new(status: u16, kind: &str, detail: String) -> Self {
        WireError {
            status,
            kind: kind.to_owned(),
            detail,
            rejection: None,
        }
    }

    /// Maps a service-layer job error onto the wire: shed jobs are
    /// `429` with the structured rejection attached, compile and run
    /// failures are `422` (the request was well-formed; the payload
    /// cannot be processed).
    #[must_use]
    pub fn from_job_error(error: &JobError) -> Self {
        match error {
            JobError::Rejected { rejection, .. } => WireError {
                status: 429,
                kind: String::from("rejected"),
                detail: error.to_string(),
                rejection: Some(rejection.clone()),
            },
            JobError::Compile { .. } => WireError::new(422, "compile_error", error.to_string()),
            JobError::Run { .. } => WireError::new(422, "run_error", error.to_string()),
            JobError::Import { .. } => WireError::new(422, "import_error", error.to_string()),
            JobError::Platform { .. } => WireError::new(422, "platform_error", error.to_string()),
        }
    }
}

/// `GET /v1/healthz` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireHealth {
    /// Always `true` when the service answers.
    pub ok: bool,
}
