//! The network front door: a vendored, dependency-free HTTP/1.1 server
//! over a [`CompileService`].
//!
//! Routes:
//!
//! | Method | Path          | Body             | Response                      |
//! |--------|---------------|------------------|-------------------------------|
//! | GET    | `/v1/healthz` | —                | [`wire::WireHealth`]          |
//! | GET    | `/v1/stats`   | —                | `ServiceStats` JSON           |
//! | POST   | `/v1/compile` | [`wire::WireJob`]| [`wire::WireResult`]          |
//! | POST   | `/v1/batch`   | [`wire::WireBatch`] | [`wire::WireBatchResult`]  |
//! | POST   | `/v1/import`  | raw HTF model bytes | [`wire::WireResult`]       |
//!
//! `/v1/import` takes the model file itself as the body — no JSON
//! envelope — and job parameters as query parameters:
//! `?name=<label>&tenant=<tenant>&deploy=cpu_tvm|digital|analog|both&artifact=true`
//! (all optional; deploy defaults to `both`). Malformed model bytes are
//! a `422` [`wire::WireError`] of kind `import_error` whose `detail`
//! leads with the `htvm_frontend::ImportError` variant name.
//!
//! Every non-2xx response is a typed [`wire::WireError`] JSON body with
//! `status` matching the status line; admission sheds are `429` with
//! the structured [`Rejection`](crate::Rejection) attached and a
//! `Retry-After` header. Connections are keep-alive per HTTP/1.1
//! semantics ([`framing::Request::keep_alive`]); one thread serves each
//! connection, capped at [`HttpConfig::max_connections`] (excess
//! connections get one `503` and are closed).

pub mod framing;
pub mod wire;

use crate::service::{CompileService, JobRequest};
use framing::{read_request, write_response, FrameError, Request};
use htvm::DeployConfig;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wire::{
    WireBatch, WireBatchEntry, WireBatchResult, WireError, WireHealth, WireJob, WireResult,
};

/// Construction parameters for an [`HttpServer`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Maximum accepted request body, in bytes; larger uploads get a
    /// typed `413`.
    pub max_body_bytes: usize,
    /// Maximum concurrently served connections; excess connections get
    /// one `503` and are closed (connection-level shedding, before any
    /// request parsing).
    pub max_connections: usize,
    /// Per-read socket timeout. An idle keep-alive connection is closed
    /// after this long, so shutdown never waits on a silent peer.
    pub read_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            max_body_bytes: 32 << 20,
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters of the front door itself (the service keeps its own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HttpStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused with `503` at the connection cap.
    pub refused: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
}

#[derive(Default)]
struct HttpCounters {
    connections: AtomicU64,
    refused: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// A running front door. Dropping the handle leaks the listener thread;
/// call [`HttpServer::shutdown`] for an orderly stop.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<HttpCounters>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `service`.
    pub fn spawn(
        service: Arc<CompileService>,
        addr: impl ToSocketAddrs,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(HttpCounters::default());
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    if active.load(Ordering::SeqCst) >= config.max_connections {
                        counters.refused.fetch_add(1, Ordering::Relaxed);
                        refuse_connection(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn({
                        let service = Arc::clone(&service);
                        let counters = Arc::clone(&counters);
                        let active = Arc::clone(&active);
                        let stop = Arc::clone(&stop);
                        let config = config.clone();
                        move || {
                            serve_connection(&service, stream, &config, &counters, &stop);
                            active.fetch_sub(1, Ordering::SeqCst);
                        }
                    });
                }
            }
        });
        Ok(HttpServer {
            addr,
            stop,
            counters,
            accept_thread,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the front-door counters.
    #[must_use]
    pub fn stats(&self) -> HttpStats {
        HttpStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, unblocks the accept loop, and joins it. Live
    /// connections finish their current exchange and then close (the
    /// stop flag is checked between requests; idle peers time out after
    /// [`HttpConfig::read_timeout`]).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        drop(self.accept_thread.join());
    }
}

/// One 503 and close, for connections over the cap.
fn refuse_connection(stream: TcpStream) {
    let body = json(&WireError::new(
        503,
        "overloaded",
        String::from("connection limit reached; retry shortly"),
    ));
    let mut writer = BufWriter::new(stream);
    drop(write_response(
        &mut writer,
        503,
        &body,
        &[("Retry-After", String::from("1"))],
        false,
    ));
}

/// Serves one connection: read request, dispatch, write response,
/// repeat while keep-alive holds.
fn serve_connection(
    service: &CompileService,
    stream: TcpStream,
    config: &HttpConfig,
    counters: &HttpCounters,
    stop: &AtomicBool,
) {
    drop(stream.set_read_timeout(Some(config.read_timeout)));
    drop(stream.set_nodelay(true));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let request = match read_request(&mut reader, config.max_body_bytes) {
            Ok(Some(request)) => request,
            Ok(None) => break, // clean close between requests
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break; // idle keep-alive connection timed out
            }
            Err(error) => {
                // Framing failed: answer once, typed, then close — the
                // stream position is unreliable after a bad frame.
                counters.requests.fetch_add(1, Ordering::Relaxed);
                counters.errors.fetch_add(1, Ordering::Relaxed);
                let status = error.status();
                let kind = match status {
                    413 => "payload_too_large",
                    501 => "not_implemented",
                    505 => "http_version",
                    _ => "bad_request",
                };
                let body = json(&WireError::new(status, kind, error.to_string()));
                drop(write_response(&mut writer, status, &body, &[], false));
                break;
            }
        };
        let keep_alive = request.keep_alive();
        let (status, body, extra) = dispatch(service, request);
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let extra: Vec<(&str, String)> = extra.iter().map(|(n, v)| (*n, v.clone())).collect();
        if write_response(&mut writer, status, &body, &extra, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// Routes one request to a handler, returning status, JSON body and
/// extra headers.
fn dispatch(
    service: &CompileService,
    request: Request,
) -> (u16, Vec<u8>, Vec<(&'static str, String)>) {
    match (request.method.as_str(), request.path()) {
        ("GET", "/v1/healthz") => (200, json(&WireHealth { ok: true }), Vec::new()),
        ("GET", "/v1/stats") => (200, json(&service.stats()), Vec::new()),
        ("POST", "/v1/compile") => match parse_body::<WireJob>(&request.body) {
            Err(detail) => bad_body(detail),
            Ok(job) => {
                let include_artifact = job.include_artifact;
                match job.into_request(service) {
                    Err(wire) => wire_failure(wire),
                    Ok(request) => match service.submit(request) {
                        Ok(result) => (
                            200,
                            json(&WireResult::from_result(result, include_artifact)),
                            Vec::new(),
                        ),
                        Err(error) => job_error(&error),
                    },
                }
            }
        },
        ("POST", "/v1/import") => match import_params(&request) {
            Err(detail) => {
                let error = WireError::new(400, "bad_request", detail);
                (400, json(&error), Vec::new())
            }
            Ok((name, tenant, deploy, include_artifact)) => {
                match service.submit_model(&name, tenant.as_deref(), deploy, &request.body) {
                    Ok(result) => (
                        200,
                        json(&WireResult::from_result(result, include_artifact)),
                        Vec::new(),
                    ),
                    Err(error) => job_error(&error),
                }
            }
        },
        ("POST", "/v1/batch") => match parse_body::<WireBatch>(&request.body) {
            Err(detail) => bad_body(detail),
            Ok(batch) => {
                let include: Vec<bool> = batch.jobs.iter().map(|j| j.include_artifact).collect();
                // Convert jobs up front; conversion failures (bad
                // envelope, failed import) become their entry's error
                // without ever reaching admission, while the rest are
                // scheduled together as one batch.
                let converted: Vec<Result<JobRequest, WireError>> = batch
                    .jobs
                    .into_iter()
                    .map(|job| job.into_request(service))
                    .collect();
                let admitted: Vec<JobRequest> = converted
                    .iter()
                    .filter_map(|c| c.as_ref().ok().cloned())
                    .collect();
                let mut outcomes = service.submit_batch(admitted).into_iter();
                let results = converted
                    .into_iter()
                    .zip(include)
                    .map(|(converted, include_artifact)| {
                        WireBatchEntry::from_outcome(match converted {
                            Err(wire) => Err(wire),
                            Ok(_) => match outcomes.next().expect("one outcome per admitted job") {
                                Ok(r) => Ok(WireResult::from_result(r, include_artifact)),
                                Err(e) => Err(WireError::from_job_error(&e)),
                            },
                        })
                    })
                    .collect();
                (200, json(&WireBatchResult { results }), Vec::new())
            }
        },
        (_, "/v1/healthz" | "/v1/stats" | "/v1/compile" | "/v1/batch" | "/v1/import") => {
            let error = WireError::new(
                405,
                "method_not_allowed",
                format!("{} not allowed here", request.method),
            );
            (405, json(&error), Vec::new())
        }
        (_, path) => {
            let error = WireError::new(404, "not_found", format!("no route for {path}"));
            (404, json(&error), Vec::new())
        }
    }
}

/// Decodes a UTF-8 JSON body into `T`, with a human-readable error.
fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

fn bad_body(detail: String) -> (u16, Vec<u8>, Vec<(&'static str, String)>) {
    let error = WireError::new(400, "bad_request", format!("malformed job body: {detail}"));
    (400, json(&error), Vec::new())
}

/// Renders a [`WireError`] produced during request conversion (its
/// `status` is authoritative).
fn wire_failure(error: WireError) -> (u16, Vec<u8>, Vec<(&'static str, String)>) {
    (error.status, json(&error), Vec::new())
}

/// Parses `/v1/import` query parameters:
/// `(name, tenant, deploy, include_artifact)`.
fn import_params(
    request: &Request,
) -> Result<(String, Option<String>, DeployConfig, bool), String> {
    let mut name = String::from("import");
    let mut tenant = None;
    let mut deploy = DeployConfig::Both;
    let mut include_artifact = false;
    let query = request.target.split_once('?').map_or("", |(_, q)| q);
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "name" => name = value.to_owned(),
            "tenant" => tenant = Some(value.to_owned()),
            "deploy" => {
                deploy = match value {
                    "cpu_tvm" => DeployConfig::CpuTvm,
                    "digital" => DeployConfig::Digital,
                    "analog" => DeployConfig::Analog,
                    "both" => DeployConfig::Both,
                    other => {
                        return Err(format!(
                            "unknown deploy '{other}' (expected cpu_tvm|digital|analog|both)"
                        ))
                    }
                }
            }
            "artifact" => include_artifact = matches!(value, "true" | "1"),
            other => return Err(format!("unknown import parameter '{other}'")),
        }
    }
    Ok((name, tenant, deploy, include_artifact))
}

fn job_error(error: &crate::service::JobError) -> (u16, Vec<u8>, Vec<(&'static str, String)>) {
    let wire = WireError::from_job_error(error);
    let mut extra = Vec::new();
    if let Some(rejection) = &wire.rejection {
        let secs = rejection.retry_after_ms.div_ceil(1000).max(1);
        extra.push(("Retry-After", secs.to_string()));
    }
    (wire.status, json(&wire), extra)
}

fn json<T: serde::Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("wire types serialize infallibly")
        .into_bytes()
}
