//! Multi-tenant compile-and-simulate serving for HTVM-RS.
//!
//! Deploying to a TinyML fleet rarely means one compile: a serving tier
//! receives batches of jobs — the same handful of network architectures
//! under different deploy targets and platform experiments, over and over.
//! This crate turns the HTVM compiler into that tier:
//!
//! - The [`http`] module is the **network front door**: a vendored,
//!   dependency-free HTTP/1.1 server (`POST /v1/compile`,
//!   `POST /v1/batch`, `GET /v1/stats`) with keep-alive framing and
//!   typed JSON error responses, run as the `httpd` bin.
//! - [`CompileService`] schedules [`JobRequest`] batches on a bounded
//!   worker pool ([`ServeConfig::workers`]) and returns results in
//!   request order. **Admission control** estimates each job's cost
//!   ([`estimate_cost`]: graph size × cache state), enforces per-tenant
//!   quotas, and sheds load with a typed [`JobError::Rejected`] when
//!   the queued cost would exceed [`ServeConfig::queue_cost_budget`].
//!   Admitted jobs are ordered **cost-aware** by default
//!   ([`SchedPolicy`]): cache hits run before cold compiles, and
//!   identical keys within a batch are coalesced onto one compile.
//! - Repeat requests hit a **content-addressed artifact cache**: the key
//!   ([`ArtifactKey`]) is the canonical encoding of the graph (stable
//!   under node-id permutation — see `htvm_ir::canonical_form`) plus the
//!   deploy config, platform model and compile-relevant lowering
//!   options. Because compilation is deterministic, a cache hit returns
//!   an artifact byte-identical to a cold compile.
//! - The cache holds a bounded number of serialized bytes
//!   ([`ServeConfig::cache_budget_bytes`]) with least-recently-used
//!   eviction ([`ArtifactCache`]).
//! - All tenants share one base [`Compiler`](htvm::Compiler), so tiling
//!   solves memoized for one tenant's layers accelerate every other
//!   tenant's cold compiles too ([`ServiceStats::tile_cache`]).
//! - Jobs can ask for simulation after compiling ([`RunSpec`]), with an
//!   optional per-job deadline in simulated cycles enforced by
//!   `Machine::run_bounded`.
//! - The service is **platform-plural**: a declarative
//!   [`PlatformManifest`](htvm_soc::PlatformManifest) gives every fleet
//!   platform its own compiler, tile cache and artifact cache, and jobs
//!   route by [`JobRequest::platform`] (unknown platform or
//!   out-of-capability deploy → typed [`JobError::Platform`], mapped to
//!   HTTP 422).
//! - With [`ServeConfig::persist_root`] set, the artifact cache is
//!   **restart-durable**: artifacts spill to a versioned on-disk layout
//!   ([`persist`]) with atomic writes and corruption-tolerant loading,
//!   and a restarted service re-admits them (warm start — zero
//!   recompiles for previously served keys). The [`fleet`] module
//!   simulates N sharded instances ([`ShardRing`]) with mid-soak
//!   restarts on top of exactly that.
//!
//! See `docs/SERVING.md` for the architecture and the determinism
//! argument.
//!
//! # Example
//!
//! ```
//! use htvm_serve::{CompileService, JobRequest, ServeConfig};
//! use htvm::DeployConfig;
//! use htvm_ir::{DType, GraphBuilder, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let x = b.input("x", &[8, 8, 8], DType::I8);
//! let w = b.constant("w", Tensor::zeros(DType::I8, &[8, 8, 3, 3]));
//! let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1))?;
//! let y = b.requantize(c, 7, true)?;
//! let graph = b.finish(&[y])?;
//!
//! let service = CompileService::new(ServeConfig::default());
//! let cold = service.submit(JobRequest::compile_only("a", graph.clone(), DeployConfig::Both))?;
//! let warm = service.submit(JobRequest::compile_only("b", graph, DeployConfig::Both))?;
//! assert!(!cold.cache_hit);
//! assert!(warm.cache_hit);
//! assert_eq!(cold.artifact, warm.artifact);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod fleet;
mod hexfmt;
pub mod http;
mod key;
pub mod persist;
mod service;
pub mod shard;

pub use cache::{ArtifactCache, ArtifactCacheStats};
pub use fleet::{Fleet, InstanceStats};
pub use key::ArtifactKey;
pub use persist::{compiler_stamp, PersistStats, PersistStore, CACHE_FORMAT_VERSION};
pub use service::{
    estimate_cost, CompileService, JobError, JobRequest, JobResult, PlatformStats, RejectReason,
    Rejection, RunSpec, SchedPolicy, ServeConfig, ServiceStats, HIT_COST,
};
pub use shard::ShardRing;

#[cfg(test)]
mod tests {
    use super::*;
    use htvm::{Compiler, DeployConfig, FaultPlan, RunError, Tracer};
    use htvm_ir::{DType, Graph, GraphBuilder, Tensor};

    fn conv_graph(channels: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x", &[channels, 8, 8], DType::I8);
        let w = b.constant("w", Tensor::zeros(DType::I8, &[channels, channels, 3, 3]));
        let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1)).unwrap();
        let y = b.requantize(c, 7, true).unwrap();
        b.finish(&[y]).unwrap()
    }

    fn config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            cache_budget_bytes: 16 << 20,
            tracer: Tracer::disabled(),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn warm_artifact_is_byte_identical_to_cold() {
        let service = CompileService::new(config());
        let cold = service
            .submit(JobRequest::compile_only(
                "cold",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .expect("cold compile succeeds");
        let warm = service
            .submit(JobRequest::compile_only(
                "warm",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .expect("warm compile succeeds");
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.key_id, warm.key_id);
        // Byte identity, not just logical equality: serialize both.
        assert_eq!(
            serde_json::to_string(&cold.artifact).unwrap(),
            serde_json::to_string(&warm.artifact).unwrap()
        );
        // And byte-identical to a standalone cold compile outside the
        // service entirely.
        let standalone = Compiler::new()
            .with_deploy(DeployConfig::Both)
            .compile(&conv_graph(8))
            .expect("standalone compile succeeds");
        assert_eq!(
            serde_json::to_string(&standalone).unwrap(),
            serde_json::to_string(&warm.artifact).unwrap()
        );
        let stats = service.stats();
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.artifact_cache.hits, 1);
        assert_eq!(stats.artifact_cache.misses, 1);
    }

    #[test]
    fn different_deploy_targets_do_not_alias() {
        let service = CompileService::new(config());
        let both = service
            .submit(JobRequest::compile_only(
                "both",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        let digital = service
            .submit(JobRequest::compile_only(
                "digital",
                conv_graph(8),
                DeployConfig::Digital,
            ))
            .unwrap();
        assert_ne!(both.key_id, digital.key_id);
        assert!(!digital.cache_hit, "a different deploy is a different key");
    }

    #[test]
    fn batch_returns_results_in_request_order() {
        let service = CompileService::new(config());
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| {
                JobRequest::compile_only(
                    &format!("job{i}"),
                    conv_graph(if i % 2 == 0 { 8 } else { 16 }),
                    DeployConfig::Both,
                )
            })
            .collect();
        let results = service.submit_batch(jobs);
        assert_eq!(results.len(), 6);
        for (i, result) in results.iter().enumerate() {
            let result = result.as_ref().expect("all jobs compile");
            assert_eq!(result.job, format!("job{i}"));
        }
        let stats = service.stats();
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.artifact_cache.misses, 2, "two distinct graphs");
        assert_eq!(
            stats.coalesced, 4,
            "in-batch repeats coalesce onto the two leaders"
        );
        assert_eq!(stats.artifact_cache.hits, 0);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn cost_aware_schedules_hits_before_cold_compiles() {
        // One worker makes the schedule exactly the dispatch order, so
        // the policy is asserted deterministically via `sched_seq`, not
        // wall timing. Warm three cheap keys, then submit a batch with
        // an expensive cold compile at the *front*.
        let run = |policy: SchedPolicy| {
            let service = CompileService::new(ServeConfig {
                workers: 1,
                policy,
                ..config()
            });
            for ch in [4usize, 6, 8] {
                service
                    .submit(JobRequest::compile_only(
                        "warm",
                        conv_graph(ch),
                        DeployConfig::Both,
                    ))
                    .expect("warmup compiles");
            }
            let batch = vec![
                JobRequest::compile_only("cold", conv_graph(24), DeployConfig::Both),
                JobRequest::compile_only("hit4", conv_graph(4), DeployConfig::Both),
                JobRequest::compile_only("hit6", conv_graph(6), DeployConfig::Both),
                JobRequest::compile_only("hit8", conv_graph(8), DeployConfig::Both),
            ];
            let results = service.submit_batch(batch);
            results
                .into_iter()
                .map(|r| {
                    let r = r.expect("batch compiles");
                    (r.job, r.sched_seq, r.cache_hit)
                })
                .collect::<Vec<_>>()
        };

        let cost_aware = run(SchedPolicy::CostAware);
        let cold_seq = cost_aware[0].1;
        for (job, seq, hit) in &cost_aware[1..] {
            assert!(*hit, "warmed job '{job}' must be a cache hit");
            assert!(
                *seq < cold_seq,
                "cost-aware must run hit '{job}' (seq {seq}) before the cold compile (seq {cold_seq})"
            );
        }

        let fifo = run(SchedPolicy::Fifo);
        let cold_seq = fifo[0].1;
        for (job, seq, _) in &fifo[1..] {
            assert!(
                *seq > cold_seq,
                "fifo must run '{job}' (seq {seq}) after the head-of-line cold compile (seq {cold_seq})"
            );
        }
    }

    #[test]
    fn saturation_sheds_typed_rejections_not_unbounded_queues() {
        // Budget fits one cold compile; everything behind it is shed
        // with a typed rejection instead of queuing without bound. The
        // admission pass is synchronous and in request order, so the
        // outcome is fully deterministic.
        let cost = estimate_cost(&conv_graph(8), false);
        let service = CompileService::new(ServeConfig {
            workers: 2,
            queue_cost_budget: cost,
            ..config()
        });
        let jobs: Vec<JobRequest> = (0..5)
            .map(|i| {
                // Distinct graphs: no coalescing can rescue them.
                JobRequest::compile_only(&format!("job{i}"), conv_graph(8 + i), DeployConfig::Both)
            })
            .collect();
        let results = service.submit_batch(jobs);
        assert!(results[0].is_ok(), "an idle service always admits one");
        for (i, result) in results.iter().enumerate().skip(1) {
            match result {
                Err(JobError::Rejected { job, rejection }) => {
                    assert_eq!(job, &format!("job{i}"));
                    assert!(
                        matches!(rejection.reason, RejectReason::QueueBudget { .. }),
                        "shed reason must be the queue budget: {rejection:?}"
                    );
                    assert!(rejection.retry_after_ms > 0);
                }
                other => panic!("job{i} must be shed, got {other:?}"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.shed, 4);
        assert_eq!(stats.shed_budget, 4);
        assert_eq!(stats.jobs, 1, "shed jobs never reach a worker");

        // The queue drained: the same service admits new work again.
        let retry = service.submit(JobRequest::compile_only(
            "retry",
            conv_graph(9),
            DeployConfig::Both,
        ));
        assert!(retry.is_ok(), "admission units must be released");
    }

    #[test]
    fn tenant_quota_sheds_only_the_greedy_tenant() {
        let service = CompileService::new(ServeConfig {
            workers: 2,
            tenant_quota: 2,
            ..config()
        });
        let jobs = vec![
            JobRequest::compile_only("a0", conv_graph(4), DeployConfig::Both).with_tenant("acme"),
            JobRequest::compile_only("a1", conv_graph(6), DeployConfig::Both).with_tenant("acme"),
            JobRequest::compile_only("a2", conv_graph(8), DeployConfig::Both).with_tenant("acme"),
            JobRequest::compile_only("b0", conv_graph(10), DeployConfig::Both).with_tenant("bcorp"),
        ];
        let results = service.submit_batch(jobs);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        match &results[2] {
            Err(JobError::Rejected { rejection, .. }) => match &rejection.reason {
                RejectReason::TenantQuota {
                    tenant,
                    inflight,
                    quota,
                } => {
                    assert_eq!(tenant, "acme");
                    assert_eq!((*inflight, *quota), (2, 2));
                }
                other => panic!("expected a tenant-quota shed, got {other:?}"),
            },
            other => panic!("acme's third job must be shed, got {other:?}"),
        }
        assert!(
            results[3].is_ok(),
            "another tenant is unaffected by acme's quota"
        );
        let stats = service.stats();
        assert_eq!((stats.shed, stats.shed_quota), (1, 1));
    }

    #[test]
    fn oversized_artifacts_are_returned_but_never_cached() {
        // A cache too small for any artifact: every compile succeeds
        // and returns its artifact, the oversized counter advances, and
        // nothing becomes resident — so repeats are misses, not hits.
        let service = CompileService::new(ServeConfig {
            cache_budget_bytes: 64, // far below any serialized artifact
            ..config()
        });
        let first = service
            .submit(JobRequest::compile_only(
                "first",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .expect("compile succeeds even when caching fails");
        assert!(!first.cache_hit);
        let again = service
            .submit(JobRequest::compile_only(
                "again",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .expect("repeat compiles again");
        assert!(!again.cache_hit, "nothing was admitted to hit on");
        assert_eq!(
            serde_json::to_string(&first.artifact).unwrap(),
            serde_json::to_string(&again.artifact).unwrap()
        );
        let stats = service.stats();
        assert_eq!(stats.artifact_cache.oversized, 2);
        assert_eq!(stats.artifact_cache.entries, 0);
        assert_eq!(stats.artifact_cache.insertions, 0);
        assert_eq!(stats.artifact_cache.misses, 2);
        assert_eq!(stats.artifact_cache.hits, 0);
    }

    #[test]
    fn zero_budget_disables_caching_and_coalescing_with_exact_counters() {
        let service = CompileService::new(ServeConfig {
            cache_budget_bytes: 0,
            ..config()
        });
        let jobs: Vec<JobRequest> = (0..4)
            .map(|i| {
                JobRequest::compile_only(&format!("job{i}"), conv_graph(8), DeployConfig::Both)
            })
            .collect();
        let results = service.submit_batch(jobs);
        for result in &results {
            let result = result.as_ref().expect("all compile");
            assert!(!result.cache_hit);
            assert!(!result.coalesced, "zero budget means no reuse at all");
        }
        let stats = service.stats();
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(
            stats.artifact_cache.misses, 4,
            "every job probes and misses"
        );
        assert_eq!(stats.artifact_cache.hits, 0);
        assert_eq!(stats.artifact_cache.entries, 0);
        assert_eq!(
            stats.artifact_cache.oversized, 4,
            "every compile attempts the insert and is rejected as oversized"
        );
    }

    #[test]
    fn run_jobs_simulate_and_deadlines_fail_typed() {
        let service = CompileService::new(config());
        let input = Tensor::zeros(DType::I8, &[8, 8, 8]);
        let ok = service
            .submit(JobRequest {
                name: "run".into(),
                tenant: "anon".into(),
                platform: None,
                graph: conv_graph(8),
                deploy: DeployConfig::Both,
                run: Some(RunSpec {
                    inputs: vec![input.clone()],
                    faults: FaultPlan::default(),
                    deadline_cycles: None,
                }),
            })
            .expect("healthy run succeeds");
        let report = ok.report.expect("run jobs carry a report");
        let total = report.total_cycles();
        assert!(total > 0);

        let err = service
            .submit(JobRequest {
                name: "deadline".into(),
                tenant: "anon".into(),
                platform: None,
                graph: conv_graph(8),
                deploy: DeployConfig::Both,
                run: Some(RunSpec {
                    inputs: vec![input],
                    faults: FaultPlan::default(),
                    deadline_cycles: Some(total - 1),
                }),
            })
            .expect_err("one cycle short of the budget must fail");
        match err {
            JobError::Run {
                job,
                error: RunError::DeadlineExceeded { budget_cycles, .. },
            } => {
                assert_eq!(job, "deadline");
                assert_eq!(budget_cycles, total - 1);
            }
            other => panic!("expected a deadline error, got {other}"),
        }
    }

    #[test]
    fn tracer_records_job_spans_with_counters() {
        let tracer = Tracer::new();
        let service = CompileService::new(ServeConfig {
            workers: 2,
            cache_budget_bytes: 16 << 20,
            tracer: tracer.clone(),
            ..ServeConfig::default()
        });
        service
            .submit(JobRequest::compile_only(
                "traced",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        service
            .submit(JobRequest::compile_only(
                "traced",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        let trace = service.take_trace();
        let jobs: Vec<_> = trace.on_track(htvm::tracks::SERVICE).collect();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].arg_u64("cache_hit"), Some(0));
        assert_eq!(jobs[1].arg_u64("cache_hit"), Some(1));
        assert!(jobs.iter().all(|s| s.arg_u64("ok") == Some(1)));
        // Compiler phase spans share the trace (the miss compiled).
        assert!(trace.span("verify").is_some());
    }

    #[test]
    fn shared_tile_cache_spans_tenants() {
        let service = CompileService::new(config());
        service
            .submit(JobRequest::compile_only(
                "a",
                conv_graph(8),
                DeployConfig::Digital,
            ))
            .unwrap();
        // Same layer geometry under a different deploy: artifact-cache
        // miss, but the tiling solve is already memoized.
        service
            .submit(JobRequest::compile_only(
                "b",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        let stats = service.stats();
        assert_eq!(stats.artifact_cache.hits, 0);
        assert!(
            stats.tile_cache.hits > 0,
            "second tenant's solve must come from the shared tile cache: {:?}",
            stats.tile_cache
        );
    }
}
