//! Multi-tenant compile-and-simulate serving for HTVM-RS.
//!
//! Deploying to a TinyML fleet rarely means one compile: a serving tier
//! receives batches of jobs — the same handful of network architectures
//! under different deploy targets and platform experiments, over and over.
//! This crate turns the HTVM compiler into that tier:
//!
//! - [`CompileService`] schedules [`JobRequest`] batches on a bounded
//!   worker pool ([`ServeConfig::workers`]) and returns results in
//!   request order.
//! - Repeat requests hit a **content-addressed artifact cache**: the key
//!   ([`ArtifactKey`]) is the canonical encoding of the graph (stable
//!   under node-id permutation — see `htvm_ir::canonical_form`) plus the
//!   deploy config, platform model and compile-relevant lowering
//!   options. Because compilation is deterministic, a cache hit returns
//!   an artifact byte-identical to a cold compile.
//! - The cache holds a bounded number of serialized bytes
//!   ([`ServeConfig::cache_budget_bytes`]) with least-recently-used
//!   eviction ([`ArtifactCache`]).
//! - All tenants share one base [`Compiler`](htvm::Compiler), so tiling
//!   solves memoized for one tenant's layers accelerate every other
//!   tenant's cold compiles too ([`ServiceStats::tile_cache`]).
//! - Jobs can ask for simulation after compiling ([`RunSpec`]), with an
//!   optional per-job deadline in simulated cycles enforced by
//!   `Machine::run_bounded`.
//!
//! See `docs/SERVING.md` for the architecture and the determinism
//! argument.
//!
//! # Example
//!
//! ```
//! use htvm_serve::{CompileService, JobRequest, ServeConfig};
//! use htvm::DeployConfig;
//! use htvm_ir::{DType, GraphBuilder, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let x = b.input("x", &[8, 8, 8], DType::I8);
//! let w = b.constant("w", Tensor::zeros(DType::I8, &[8, 8, 3, 3]));
//! let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1))?;
//! let y = b.requantize(c, 7, true)?;
//! let graph = b.finish(&[y])?;
//!
//! let service = CompileService::new(ServeConfig::default());
//! let cold = service.submit(JobRequest::compile_only("a", graph.clone(), DeployConfig::Both))?;
//! let warm = service.submit(JobRequest::compile_only("b", graph, DeployConfig::Both))?;
//! assert!(!cold.cache_hit);
//! assert!(warm.cache_hit);
//! assert_eq!(cold.artifact, warm.artifact);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod key;
mod service;

pub use cache::{ArtifactCache, ArtifactCacheStats};
pub use key::ArtifactKey;
pub use service::{
    CompileService, JobError, JobRequest, JobResult, RunSpec, ServeConfig, ServiceStats,
};

#[cfg(test)]
mod tests {
    use super::*;
    use htvm::{Compiler, DeployConfig, FaultPlan, RunError, Tracer};
    use htvm_ir::{DType, Graph, GraphBuilder, Tensor};

    fn conv_graph(channels: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x", &[channels, 8, 8], DType::I8);
        let w = b.constant("w", Tensor::zeros(DType::I8, &[channels, channels, 3, 3]));
        let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1)).unwrap();
        let y = b.requantize(c, 7, true).unwrap();
        b.finish(&[y]).unwrap()
    }

    fn config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            cache_budget_bytes: 16 << 20,
            tracer: Tracer::disabled(),
        }
    }

    #[test]
    fn warm_artifact_is_byte_identical_to_cold() {
        let service = CompileService::new(config());
        let cold = service
            .submit(JobRequest::compile_only(
                "cold",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .expect("cold compile succeeds");
        let warm = service
            .submit(JobRequest::compile_only(
                "warm",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .expect("warm compile succeeds");
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.key_id, warm.key_id);
        // Byte identity, not just logical equality: serialize both.
        assert_eq!(
            serde_json::to_string(&cold.artifact).unwrap(),
            serde_json::to_string(&warm.artifact).unwrap()
        );
        // And byte-identical to a standalone cold compile outside the
        // service entirely.
        let standalone = Compiler::new()
            .with_deploy(DeployConfig::Both)
            .compile(&conv_graph(8))
            .expect("standalone compile succeeds");
        assert_eq!(
            serde_json::to_string(&standalone).unwrap(),
            serde_json::to_string(&warm.artifact).unwrap()
        );
        let stats = service.stats();
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.artifact_cache.hits, 1);
        assert_eq!(stats.artifact_cache.misses, 1);
    }

    #[test]
    fn different_deploy_targets_do_not_alias() {
        let service = CompileService::new(config());
        let both = service
            .submit(JobRequest::compile_only(
                "both",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        let digital = service
            .submit(JobRequest::compile_only(
                "digital",
                conv_graph(8),
                DeployConfig::Digital,
            ))
            .unwrap();
        assert_ne!(both.key_id, digital.key_id);
        assert!(!digital.cache_hit, "a different deploy is a different key");
    }

    #[test]
    fn batch_returns_results_in_request_order() {
        let service = CompileService::new(config());
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| {
                JobRequest::compile_only(
                    &format!("job{i}"),
                    conv_graph(if i % 2 == 0 { 8 } else { 16 }),
                    DeployConfig::Both,
                )
            })
            .collect();
        let results = service.submit_batch(jobs);
        assert_eq!(results.len(), 6);
        for (i, result) in results.iter().enumerate() {
            let result = result.as_ref().expect("all jobs compile");
            assert_eq!(result.job, format!("job{i}"));
        }
        let stats = service.stats();
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.artifact_cache.misses, 2, "two distinct graphs");
        assert_eq!(stats.artifact_cache.hits, 4);
    }

    #[test]
    fn run_jobs_simulate_and_deadlines_fail_typed() {
        let service = CompileService::new(config());
        let input = Tensor::zeros(DType::I8, &[8, 8, 8]);
        let ok = service
            .submit(JobRequest {
                name: "run".into(),
                graph: conv_graph(8),
                deploy: DeployConfig::Both,
                run: Some(RunSpec {
                    inputs: vec![input.clone()],
                    faults: FaultPlan::default(),
                    deadline_cycles: None,
                }),
            })
            .expect("healthy run succeeds");
        let report = ok.report.expect("run jobs carry a report");
        let total = report.total_cycles();
        assert!(total > 0);

        let err = service
            .submit(JobRequest {
                name: "deadline".into(),
                graph: conv_graph(8),
                deploy: DeployConfig::Both,
                run: Some(RunSpec {
                    inputs: vec![input],
                    faults: FaultPlan::default(),
                    deadline_cycles: Some(total - 1),
                }),
            })
            .expect_err("one cycle short of the budget must fail");
        match err {
            JobError::Run {
                job,
                error: RunError::DeadlineExceeded { budget_cycles, .. },
            } => {
                assert_eq!(job, "deadline");
                assert_eq!(budget_cycles, total - 1);
            }
            other => panic!("expected a deadline error, got {other}"),
        }
    }

    #[test]
    fn tracer_records_job_spans_with_counters() {
        let tracer = Tracer::new();
        let service = CompileService::new(ServeConfig {
            workers: 2,
            cache_budget_bytes: 16 << 20,
            tracer: tracer.clone(),
        });
        service
            .submit(JobRequest::compile_only(
                "traced",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        service
            .submit(JobRequest::compile_only(
                "traced",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        let trace = service.take_trace();
        let jobs: Vec<_> = trace.on_track(htvm::tracks::SERVICE).collect();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].arg_u64("cache_hit"), Some(0));
        assert_eq!(jobs[1].arg_u64("cache_hit"), Some(1));
        assert!(jobs.iter().all(|s| s.arg_u64("ok") == Some(1)));
        // Compiler phase spans share the trace (the miss compiled).
        assert!(trace.span("verify").is_some());
    }

    #[test]
    fn shared_tile_cache_spans_tenants() {
        let service = CompileService::new(config());
        service
            .submit(JobRequest::compile_only(
                "a",
                conv_graph(8),
                DeployConfig::Digital,
            ))
            .unwrap();
        // Same layer geometry under a different deploy: artifact-cache
        // miss, but the tiling solve is already memoized.
        service
            .submit(JobRequest::compile_only(
                "b",
                conv_graph(8),
                DeployConfig::Both,
            ))
            .unwrap();
        let stats = service.stats();
        assert_eq!(stats.artifact_cache.hits, 0);
        assert!(
            stats.tile_cache.hits > 0,
            "second tenant's solve must come from the shared tile cache: {:?}",
            stats.tile_cache
        );
    }
}
