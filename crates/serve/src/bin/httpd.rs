//! The compile-service daemon: `CompileService` behind the HTTP/1.1
//! front door.
//!
//! ```text
//! cargo run --release -p htvm-serve --bin httpd -- \
//!     [--addr HOST:PORT] [--workers N] [--cache-mb MB] \
//!     [--queue-budget COST] [--tenant-quota N] [--policy fifo|cost] \
//!     [--max-body-mb MB] [--max-connections N] [--persist-dir PATH]
//! ```
//!
//! Defaults: `127.0.0.1:7440`, cost-aware scheduling, 64 MiB artifact
//! cache per platform, unlimited admission budget and tenant quota, no
//! persistence. With `--persist-dir`, every freshly compiled artifact
//! spills to `PATH/v1/<platform>/<key_id>.json` and is re-admitted at
//! the next boot, so restarts are warm. Exit codes: 0 — clean shutdown
//! (never reached; the daemon runs until killed); 2 — usage or bind
//! error.

use htvm_serve::http::{HttpConfig, HttpServer};
use htvm_serve::{CompileService, SchedPolicy, ServeConfig};
use std::process::ExitCode;
use std::sync::Arc;

fn parse<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<T>()
        .map_err(|_| format!("{flag} needs a number, got {v:?}"))
}

fn run() -> Result<(), String> {
    let mut addr = String::from("127.0.0.1:7440");
    let mut serve = ServeConfig::default();
    let mut http = HttpConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--workers" => serve.workers = parse(&mut args, "--workers")?,
            "--cache-mb" => {
                serve.cache_budget_bytes = parse::<usize>(&mut args, "--cache-mb")? << 20;
            }
            "--queue-budget" => serve.queue_cost_budget = parse(&mut args, "--queue-budget")?,
            "--tenant-quota" => serve.tenant_quota = parse(&mut args, "--tenant-quota")?,
            "--policy" => {
                serve.policy = match args.next().as_deref() {
                    Some("fifo") => SchedPolicy::Fifo,
                    Some("cost") | Some("cost-aware") => SchedPolicy::CostAware,
                    other => return Err(format!("--policy needs fifo|cost, got {other:?}")),
                }
            }
            "--max-body-mb" => {
                http.max_body_bytes = parse::<usize>(&mut args, "--max-body-mb")? << 20;
            }
            "--max-connections" => http.max_connections = parse(&mut args, "--max-connections")?,
            "--persist-dir" => {
                serve.persist_root = Some(args.next().ok_or("--persist-dir needs a path")?.into());
            }
            other => {
                return Err(format!(
                    "unknown flag {other:?}; usage: httpd [--addr HOST:PORT] [--workers N] \
                     [--cache-mb MB] [--queue-budget COST] [--tenant-quota N] \
                     [--policy fifo|cost] [--max-body-mb MB] [--max-connections N] \
                     [--persist-dir PATH]"
                ))
            }
        }
    }
    if serve.workers == 0 {
        return Err(String::from("--workers must be positive"));
    }

    let policy = serve.policy;
    let persist = serve.persist_root.clone();
    let service = Arc::new(CompileService::new(serve));
    let boot = service.stats();
    let platforms = service
        .platform_ids()
        .iter()
        .map(|id| (*id).to_owned())
        .collect::<Vec<_>>()
        .join(", ");
    let server =
        HttpServer::spawn(service, &addr, http).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("htvm-serve httpd listening on http://{}", server.addr());
    println!(
        "  policy {policy:?}; POST /v1/compile, POST /v1/batch, GET /v1/stats, GET /v1/healthz"
    );
    println!("  platforms: {platforms}");
    if let Some(dir) = persist {
        println!(
            "  persistence: {} (re-admitted {} entries, skipped {})",
            dir.display(),
            boot.persist_load_ok,
            boot.persist_load_skipped
        );
    }
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
