//! Content-addressed cache keys for compiled artifacts.
//!
//! An [`ArtifactKey`] is the full canonical encoding of everything the
//! compiler output depends on: the graph in [`canonical_form`] (stable
//! under node-id permutation), the [`DeployConfig`], the [`DianaConfig`]
//! platform model, and the compile-relevant subset of [`LowerOptions`]
//! (the *fingerprint* — runtime plumbing like the tile cache handle, the
//! parallelism switch and the tracer are deliberately excluded because
//! they never change the produced artifact; `tests/determinism.rs` in
//! `htvm` asserts exactly that).
//!
//! The key stores the complete encoded bytes, not just a digest, so two
//! distinct requests can never alias to one cache slot: equality is
//! byte-for-byte. The 128-bit FNV digest ([`ArtifactKey::id`]) is only a
//! display handle for logs and spans.

use htvm::{DeployConfig, DianaConfig, LowerOptions};
use htvm_ir::{canonical_form, fnv128, Graph};
use serde::Serialize;

/// The serializable subset of [`LowerOptions`] that determines the
/// artifact. Everything excluded (`tile_cache`, `parallel`, `extracted`,
/// `tracer`) is observational or a pure-function memo and cannot change
/// the output bytes.
#[derive(Serialize)]
struct LowerFingerprint {
    digital_objective: htvm::TilingObjective,
    analog_objective: htvm::TilingObjective,
    naive_l2: bool,
    l1_act_override: Option<usize>,
    size_model: htvm::binsize::BinarySizeModel,
    emit_fallbacks: bool,
}

/// A content-addressed identity for one compile request.
///
/// Two keys are equal exactly when a cold compile of both requests is
/// guaranteed to produce byte-identical artifacts. The `platform_id` is
/// the routing id from the fleet manifest; it enters the key so two
/// manifest entries that happen to share an SoC config still account
/// (and persist) their artifacts separately.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    bytes: Vec<u8>,
}

impl ArtifactKey {
    /// Builds the key for compiling `graph` on the platform routed as
    /// `platform_id`, under the given deploy target, SoC model and
    /// lowering options.
    #[must_use]
    pub fn new(
        platform_id: &str,
        graph: &Graph,
        deploy: DeployConfig,
        platform: &DianaConfig,
        opts: &LowerOptions,
    ) -> Self {
        let fingerprint = LowerFingerprint {
            digital_objective: opts.digital_objective.clone(),
            analog_objective: opts.analog_objective.clone(),
            naive_l2: opts.naive_l2,
            l1_act_override: opts.l1_act_override,
            size_model: opts.size_model,
            emit_fallbacks: opts.emit_fallbacks,
        };
        let mut bytes = canonical_form(graph);
        bytes.extend_from_slice(b"\0platform_id:");
        bytes.extend_from_slice(platform_id.as_bytes());
        bytes.extend_from_slice(b"\0deploy:");
        bytes.extend_from_slice(json(&deploy).as_bytes());
        bytes.extend_from_slice(b"\0platform:");
        bytes.extend_from_slice(json(platform).as_bytes());
        bytes.extend_from_slice(b"\0lower:");
        bytes.extend_from_slice(json(&fingerprint).as_bytes());
        ArtifactKey { bytes }
    }

    /// The 128-bit FNV-1a digest of the encoded key, as 32 hex digits.
    /// A display handle for logs, spans and bench reports — cache lookup
    /// compares the full bytes, never this digest.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{:032x}", fnv128(&self.bytes))
    }

    /// Size of the encoded key in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// The full encoded key bytes — what the persistent store writes so
    /// a restarted service can re-admit entries under the *exact* key
    /// (cache lookup compares these bytes, never the digest).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a key from previously persisted [`ArtifactKey::as_bytes`]
    /// output. For cache re-admission only: the bytes are trusted to be
    /// a real encoding, and the persistence layer cross-checks the
    /// recorded digest against [`ArtifactKey::id`] before using one.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        ArtifactKey { bytes }
    }
}

impl std::fmt::Debug for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactKey")
            .field("id", &self.id())
            .field("encoded_len", &self.bytes.len())
            .finish()
    }
}

fn json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("config types serialize infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm_ir::{DType, GraphBuilder, Tensor};

    fn conv_graph(channels: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x", &[channels, 8, 8], DType::I8);
        let w = b.constant("w", Tensor::zeros(DType::I8, &[channels, channels, 3, 3]));
        let c = b.conv2d(x, w, (1, 1), (1, 1, 1, 1)).unwrap();
        let y = b.requantize(c, 7, true).unwrap();
        b.finish(&[y]).unwrap()
    }

    #[test]
    fn same_request_same_key() {
        let platform = DianaConfig::default();
        let opts = LowerOptions::default();
        let a = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &platform,
            &opts,
        );
        let b = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &platform,
            &opts,
        );
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn every_component_feeds_the_key() {
        let platform = DianaConfig::default();
        let opts = LowerOptions::default();
        let base = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &platform,
            &opts,
        );

        let other_graph = ArtifactKey::new(
            "diana",
            &conv_graph(16),
            DeployConfig::Both,
            &platform,
            &opts,
        );
        assert_ne!(base, other_graph, "graph must feed the key");

        let other_deploy = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Digital,
            &platform,
            &opts,
        );
        assert_ne!(base, other_deploy, "deploy target must feed the key");

        let other_id =
            ArtifactKey::new("gap9", &conv_graph(8), DeployConfig::Both, &platform, &opts);
        assert_ne!(base, other_id, "the routing platform id must feed the key");

        let mut small = DianaConfig::default();
        small.l1_act_bytes /= 2;
        let other_platform =
            ArtifactKey::new("diana", &conv_graph(8), DeployConfig::Both, &small, &opts);
        assert_ne!(base, other_platform, "platform model must feed the key");

        let no_fallbacks = LowerOptions {
            emit_fallbacks: false,
            ..LowerOptions::default()
        };
        let other_opts = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &platform,
            &no_fallbacks,
        );
        assert_ne!(base, other_opts, "lowering options must feed the key");
    }

    #[test]
    fn calibrated_cost_models_feed_the_key() {
        // A calibrated objective must never alias with the heuristic one,
        // and two calibrations must never alias with each other — the
        // calibration version is part of the serialized cost model.
        let platform = DianaConfig::default();
        let graph = conv_graph(8);
        let base = ArtifactKey::new(
            "diana",
            &graph,
            DeployConfig::Both,
            &platform,
            &LowerOptions::default(),
        );
        let model = htvm::CostModel {
            version: 1,
            gamma: 4.0,
            dma_setup: 30,
            dma_bytes_per_cycle: 8,
            kernel_call_overhead: 800,
            tile_overhead: 300,
            engine: htvm::EngineModel::Digital {
                pe_rows: 16,
                pe_cols: 16,
                dw_macs_per_cycle_x100: 375,
                add_elems_per_cycle: 16,
                efficiency_pct: 40,
            },
        };
        let calibrated = LowerOptions {
            digital_objective: htvm::TilingObjective::calibrated(model),
            ..LowerOptions::default()
        };
        let with_model =
            ArtifactKey::new("diana", &graph, DeployConfig::Both, &platform, &calibrated);
        assert_ne!(
            base, with_model,
            "a calibrated objective must produce a distinct key"
        );

        let mut bumped_model = model;
        bumped_model.version = 2;
        let bumped = LowerOptions {
            digital_objective: htvm::TilingObjective::calibrated(bumped_model),
            ..LowerOptions::default()
        };
        let with_bumped = ArtifactKey::new("diana", &graph, DeployConfig::Both, &platform, &bumped);
        assert_ne!(
            with_model, with_bumped,
            "bumping the calibration version must re-key the artifact"
        );
    }

    #[test]
    fn runtime_only_options_do_not_feed_the_key() {
        let platform = DianaConfig::default();
        let base = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &platform,
            &LowerOptions::default(),
        );
        let mut runtime = LowerOptions::default();
        runtime.parallel = !runtime.parallel;
        runtime.tile_cache = Some(htvm::TileCache::new());
        runtime.tracer = htvm::Tracer::new();
        let same = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &platform,
            &runtime,
        );
        assert_eq!(
            base, same,
            "tile cache, parallelism and tracing never change the artifact"
        );
    }

    #[test]
    fn bytes_round_trip_preserves_identity() {
        let key = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &DianaConfig::default(),
            &LowerOptions::default(),
        );
        let back = ArtifactKey::from_bytes(key.as_bytes().to_vec());
        assert_eq!(back, key, "persisted bytes rebuild the exact key");
        assert_eq!(back.id(), key.id());
        assert_eq!(back.encoded_len(), key.encoded_len());
    }

    #[test]
    fn id_is_stable_hex() {
        let key = ArtifactKey::new(
            "diana",
            &conv_graph(8),
            DeployConfig::Both,
            &DianaConfig::default(),
            &LowerOptions::default(),
        );
        let id = key.id();
        assert_eq!(id.len(), 32);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(id, key.id());
    }
}
