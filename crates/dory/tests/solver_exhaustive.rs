//! Validates the pruned solver against brute force: for geometries small
//! enough to enumerate *every* valid tile, the solver must achieve the
//! maximum Eq. 1 score (its candidate pruning and the analytic `o_yᵗ`
//! closure must not lose the optimum).

use htvm_dory::{solve, tile_fits, LayerGeometry, MemoryBudget, TileConfig, TilingObjective};
use proptest::prelude::*;

/// Brute-force maximum of the objective over every valid tile.
fn brute_force_best(
    geom: &LayerGeometry,
    budget: &MemoryBudget,
    objective: &TilingObjective,
) -> Option<f64> {
    let lockstep = matches!(
        geom.kind,
        htvm_dory::LayerKind::DepthwiseConv2d | htvm_dory::LayerKind::Add
    );
    let mut best: Option<f64> = None;
    for c_t in 1..=geom.c {
        let k_range: Vec<usize> = if lockstep {
            vec![c_t]
        } else {
            (1..=geom.k).collect()
        };
        for &k_t in &k_range {
            for oy_t in 1..=geom.oy() {
                for ox_t in 1..=geom.ox() {
                    let tile = TileConfig {
                        c_t,
                        k_t,
                        oy_t,
                        ox_t,
                    };
                    if !tile_fits(geom, &tile, budget) {
                        continue;
                    }
                    let s = objective.score(geom, &tile, budget);
                    best = Some(best.map_or(s, |b: f64| b.max(s)));
                }
            }
        }
    }
    best
}

fn small_geometry() -> impl Strategy<Value = LayerGeometry> {
    (
        1usize..=12, // c
        1usize..=12, // k
        3usize..=10, // spatial
        1usize..=3,  // filter
        1usize..=2,  // stride
    )
        .prop_map(|(c, k, s, f, st)| {
            LayerGeometry::conv2d(c, k, s.max(f), s.max(f), f, f, (st, st), (0, 0, 0, 0))
        })
}

/// The committed `solver_exhaustive.proptest-regressions` seed, pinned as
/// an explicit deterministic case so it runs on every `cargo test`
/// regardless of the proptest implementation's replay behavior:
/// `Conv2d { c: 2, k: 3, ix/iy: 4x4, fx/fy: 1x1 }` with a 104-byte
/// activation budget — small enough that the full output (48 B as i8, but
/// 192 B as i32 partial sums under a channel split) straddles the budget
/// edge, exercising the grey-region/feasibility boundary in
/// `solve`/`tile_fits`/`max_feasible_oy`.
#[test]
fn regression_seed_small_budget_conv() {
    let geom = LayerGeometry::conv2d(2, 3, 4, 4, 1, 1, (1, 1), (0, 0, 0, 0));
    // The committed seed budget first, then a sweep across the whole
    // small-budget edge for the same geometry: from "nothing fits" through
    // "only channel-split tiles (i32 partial sums) fit" up to "fits
    // untiled" (input 32 B + i8 output 48 B = 80 B).
    for act_bytes in std::iter::once(104).chain(1..=192) {
        let budget = MemoryBudget {
            act_bytes,
            weight_bytes: Some(1024),
            array: None,
        };
        for objective in [
            TilingObjective::memory_only(),
            TilingObjective::diana_digital_pe_only(),
            TilingObjective::diana_digital(),
        ] {
            let brute = brute_force_best(&geom, &budget, &objective);
            let solved = solve(&geom, &budget, &objective);
            match (brute, solved) {
                (Some(best), Ok(sol)) => {
                    assert!(
                        tile_fits(&geom, &sol.tile, &budget),
                        "solution {:?} violates the {act_bytes}-byte budget",
                        sol.tile
                    );
                    if !sol.fits_untiled {
                        assert!(
                            sol.score >= best - 1e-9,
                            "solver {} < brute force {best} at {act_bytes} B for {geom:?}",
                            sol.score
                        );
                    }
                }
                (None, Err(_)) => {}
                (b, s) => panic!(
                    "feasibility disagreement at {act_bytes} B: brute {b:?} vs solver {:?}",
                    s.map(|x| x.score)
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn solver_matches_brute_force_optimum(
        geom in small_geometry(),
        act_bytes in 64usize..4096,
        weight_kb in 1usize..=4,
    ) {
        let budget = MemoryBudget {
            act_bytes,
            weight_bytes: Some(weight_kb * 1024),
            array: None,
        };
        for objective in [
            TilingObjective::memory_only(),
            TilingObjective::diana_digital_pe_only(),
            TilingObjective::diana_digital(),
        ] {
            let brute = brute_force_best(&geom, &budget, &objective);
            let solved = solve(&geom, &budget, &objective);
            match (brute, solved) {
                (Some(best), Ok(sol)) => {
                    // Grey-region rule: when the whole layer fits untiled
                    // the solver returns the full tile by design, even
                    // though a partial-sum tile can score higher on the
                    // literal Eq. 1 (i32 accumulators inflate "memory
                    // use"). Only tiled solutions must reach the
                    // brute-force maximum.
                    if !sol.fits_untiled {
                        prop_assert!(
                            sol.score >= best - 1e-9,
                            "solver {} < brute force {best} for {geom:?}",
                            sol.score
                        );
                    }
                }
                (None, Err(_)) => {} // both agree: nothing fits
                (b, s) => prop_assert!(
                    false,
                    "feasibility disagreement: brute {b:?} vs solver {:?}",
                    s.map(|x| x.score)
                ),
            }
        }
    }

    /// Depthwise geometries keep the lockstep constraint under brute force
    /// too.
    #[test]
    fn solver_matches_brute_force_depthwise(
        c in 1usize..=12,
        spatial in 3usize..=8,
        act_bytes in 32usize..2048,
    ) {
        let geom = LayerGeometry::depthwise(c, spatial, spatial, 3, 3, (1, 1), (1, 1, 1, 1));
        let budget = MemoryBudget {
            act_bytes,
            weight_bytes: Some(1024),
            array: None,
        };
        let objective = TilingObjective::diana_digital();
        let brute = brute_force_best(&geom, &budget, &objective);
        match (brute, solve(&geom, &budget, &objective)) {
            (Some(best), Ok(sol)) => {
                prop_assert!(sol.fits_untiled || sol.score >= best - 1e-9);
            }
            (None, Err(_)) => {}
            (b, s) => prop_assert!(false, "disagreement: {b:?} vs {:?}", s.map(|x| x.score)),
        }
    }
}
