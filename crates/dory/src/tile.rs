//! Tile configurations and the tile loop.

use crate::{LayerGeometry, LayerKind};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A tile size choice: how much of each layer dimension one accelerator
/// invocation processes.
///
/// Tiles are expressed on the *output* space (`Kᵗ`, `o_yᵗ`, `o_xᵗ`) plus the
/// reduction slice `Cᵗ`; the input-side sizes `i_yᵗ`, `i_xᵗ` that the
/// paper's heuristics reference (Eq. 4–5) follow from the halo formula
/// `i^t = (o^t − 1)·s + f` and are available via [`TileConfig::in_dims`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileConfig {
    /// Input-channel (reduction) slice `Cᵗ`.
    pub c_t: usize,
    /// Output-channel slice `Kᵗ`.
    pub k_t: usize,
    /// Output rows per tile `o_yᵗ`.
    pub oy_t: usize,
    /// Output columns per tile `o_xᵗ`.
    pub ox_t: usize,
}

impl TileConfig {
    /// The tile covering the entire layer (no tiling).
    #[must_use]
    pub fn full(geom: &LayerGeometry) -> Self {
        TileConfig {
            c_t: geom.c,
            k_t: geom.k,
            oy_t: geom.oy(),
            ox_t: geom.ox(),
        }
    }

    /// Derived input-tile extent `(i_yᵗ, i_xᵗ)` for an interior tile,
    /// capped at the real input size (border tiles shrink further).
    #[must_use]
    pub fn in_dims(&self, geom: &LayerGeometry) -> (usize, usize) {
        let iy_t = ((self.oy_t - 1) * geom.strides.0 + geom.fy).min(geom.iy);
        let ix_t = ((self.ox_t - 1) * geom.strides.1 + geom.fx).min(geom.ix);
        (iy_t, ix_t)
    }

    /// Checks structural validity of the tile for a geometry.
    ///
    /// # Panics
    ///
    /// Panics if a tile dimension is zero, exceeds the layer dimension, or
    /// (for depthwise/add layers) `c_t != k_t` — these layers have a single
    /// channel dimension.
    pub fn validate(&self, geom: &LayerGeometry) {
        assert!(
            self.c_t >= 1 && self.c_t <= geom.c,
            "c_t {} out of 1..={}",
            self.c_t,
            geom.c
        );
        assert!(
            self.k_t >= 1 && self.k_t <= geom.k,
            "k_t {} out of 1..={}",
            self.k_t,
            geom.k
        );
        assert!(
            self.oy_t >= 1 && self.oy_t <= geom.oy(),
            "oy_t {} out of 1..={}",
            self.oy_t,
            geom.oy()
        );
        assert!(
            self.ox_t >= 1 && self.ox_t <= geom.ox(),
            "ox_t {} out of 1..={}",
            self.ox_t,
            geom.ox()
        );
        if matches!(geom.kind, LayerKind::DepthwiseConv2d | LayerKind::Add) {
            assert_eq!(
                self.c_t, self.k_t,
                "depthwise/add tiles have one channel dimension"
            );
        }
    }

    /// Total number of accelerator invocations (tiles) for the layer.
    #[must_use]
    pub fn num_tiles(&self, geom: &LayerGeometry) -> usize {
        tiles(geom, self).len()
    }

    /// Returns `true` if this tile covers the whole layer in one shot.
    #[must_use]
    pub fn is_full(&self, geom: &LayerGeometry) -> bool {
        *self == TileConfig::full(geom)
    }
}

/// One iteration of the tile loop: the output sub-block to produce and the
/// reduction slice to accumulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileInstance {
    /// Output channels produced.
    pub k: Range<usize>,
    /// Output rows produced.
    pub oy: Range<usize>,
    /// Output columns produced.
    pub ox: Range<usize>,
    /// Input channels accumulated in this invocation.
    pub c: Range<usize>,
    /// Whether this is the first reduction slice for its output block
    /// (accumulator initialization).
    pub first_c: bool,
    /// Whether this is the last reduction slice (requantization happens
    /// after it).
    pub last_c: bool,
}

impl TileInstance {
    /// The input rows this tile must load, clamped into the real (unpadded)
    /// input. Padding rows are synthesized by the accelerator and need no
    /// DMA.
    #[must_use]
    pub fn input_rows(&self, geom: &LayerGeometry) -> Range<usize> {
        window(
            self.oy.clone(),
            geom.strides.0,
            geom.fy,
            geom.padding.top,
            geom.iy,
        )
    }

    /// The input columns this tile must load, clamped into the real input.
    #[must_use]
    pub fn input_cols(&self, geom: &LayerGeometry) -> Range<usize> {
        window(
            self.ox.clone(),
            geom.strides.1,
            geom.fx,
            geom.padding.left,
            geom.ix,
        )
    }

    /// Bytes of input activation DMA'd in for this tile (per operand; the
    /// element-wise add layer loads two operands of this size).
    #[must_use]
    pub fn input_bytes(&self, geom: &LayerGeometry) -> usize {
        let rows = self.input_rows(geom).len();
        let cols = self.input_cols(geom).len();
        geom.act_dtype.storage_bytes(self.c.len() * rows * cols)
    }

    /// Number of contiguous 1-D DMA transfers needed to fetch the input
    /// tile from a C–y–x laid-out L2 tensor: full-width tiles coalesce one
    /// transfer per (channel, full-plane) — this is what the paper's
    /// `H_DMA = i_yᵗ` heuristic optimizes (fewer, longer transfers).
    #[must_use]
    pub fn input_chunks(&self, geom: &LayerGeometry) -> usize {
        let rows = self.input_rows(geom).len();
        let cols = self.input_cols(geom).len();
        if cols == geom.ix {
            if rows == geom.iy {
                // Full spatial planes: channel slices are adjacent in the
                // C–y–x layout, so any contiguous channel range is one
                // transfer.
                1
            } else {
                self.c.len()
            }
        } else {
            self.c.len() * rows
        }
    }

    /// Bytes of output DMA'd back to L2 after this tile (zero for
    /// non-final reduction slices, which stay resident in L1).
    #[must_use]
    pub fn output_bytes(&self, geom: &LayerGeometry) -> usize {
        if !self.last_c {
            return 0;
        }
        geom.act_dtype
            .storage_bytes(self.k.len() * self.oy.len() * self.ox.len())
    }

    /// Contiguous 1-D DMA transfers for the output tile (K–y–x layout).
    #[must_use]
    pub fn output_chunks(&self, geom: &LayerGeometry) -> usize {
        if !self.last_c {
            return 0;
        }
        if self.ox.len() == geom.ox() {
            if self.oy.len() == geom.oy() && self.k.len() == geom.k {
                1
            } else {
                self.k.len()
            }
        } else {
            self.k.len() * self.oy.len()
        }
    }

    /// Multiply-accumulate operations performed by this invocation.
    #[must_use]
    pub fn macs(&self, geom: &LayerGeometry) -> u64 {
        let spatial = (self.oy.len() * self.ox.len()) as u64;
        match geom.kind {
            LayerKind::Conv2d => (self.k.len() * self.c.len() * geom.fy * geom.fx) as u64 * spatial,
            LayerKind::DepthwiseConv2d => (self.c.len() * geom.fy * geom.fx) as u64 * spatial,
            LayerKind::Dense => (self.k.len() * self.c.len()) as u64,
            LayerKind::Add => 0,
            LayerKind::MatMul => (self.k.len() * self.c.len()) as u64 * spatial,
        }
    }
}

fn window(
    out: Range<usize>,
    stride: usize,
    kernel: usize,
    pad_lo: usize,
    input: usize,
) -> Range<usize> {
    let lo = (out.start * stride) as isize - pad_lo as isize;
    let hi = ((out.end - 1) * stride + kernel) as isize - pad_lo as isize;
    let lo = lo.max(0) as usize;
    let hi = (hi.max(0) as usize).min(input);
    lo..hi.max(lo)
}

/// Enumerates the tile loop for a layer under a tile configuration.
///
/// Iteration order matches DORY's generated loop nest: output channels
/// outermost, then output rows, then output columns, with the reduction
/// slices innermost so partial sums complete before the next output block.
/// Together the instances cover every output element exactly once and every
/// reduction slice exactly once per output block — the coverage invariant
/// the property tests enforce.
///
/// # Panics
///
/// Panics if `tile` is invalid for `geom` (see [`TileConfig::validate`]).
#[must_use]
pub fn tiles(geom: &LayerGeometry, tile: &TileConfig) -> Vec<TileInstance> {
    tile.validate(geom);
    let (oy, ox) = (geom.oy(), geom.ox());
    let mut out = Vec::new();
    let lockstep = matches!(geom.kind, LayerKind::DepthwiseConv2d | LayerKind::Add);
    for k0 in (0..geom.k).step_by(tile.k_t) {
        let k1 = (k0 + tile.k_t).min(geom.k);
        for y0 in (0..oy).step_by(tile.oy_t) {
            let y1 = (y0 + tile.oy_t).min(oy);
            for x0 in (0..ox).step_by(tile.ox_t) {
                let x1 = (x0 + tile.ox_t).min(ox);
                if lockstep {
                    // Depthwise/add: the channel dimension is the k loop.
                    out.push(TileInstance {
                        k: k0..k1,
                        oy: y0..y1,
                        ox: x0..x1,
                        c: k0..k1,
                        first_c: true,
                        last_c: true,
                    });
                } else {
                    let mut c0 = 0usize;
                    while c0 < geom.c {
                        let c1 = (c0 + tile.c_t).min(geom.c);
                        out.push(TileInstance {
                            k: k0..k1,
                            oy: y0..y1,
                            ox: x0..x1,
                            c: c0..c1,
                            first_c: c0 == 0,
                            last_c: c1 == geom.c,
                        });
                        c0 = c1;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> LayerGeometry {
        LayerGeometry::conv2d(8, 12, 16, 16, 3, 3, (1, 1), (1, 1, 1, 1))
    }

    #[test]
    fn full_tile_is_one_instance() {
        let g = conv();
        let t = TileConfig::full(&g);
        assert!(t.is_full(&g));
        let instances = tiles(&g, &t);
        assert_eq!(instances.len(), 1);
        let i = &instances[0];
        assert!(i.first_c && i.last_c);
        assert_eq!(i.k, 0..12);
        assert_eq!(i.oy, 0..16);
    }

    #[test]
    fn coverage_is_exact() {
        let g = conv();
        let t = TileConfig {
            c_t: 3,
            k_t: 5,
            oy_t: 7,
            ox_t: 16,
        };
        let mut cover = vec![0u32; g.k * g.oy() * g.ox()];
        let mut reduction = vec![0u32; g.c];
        for inst in tiles(&g, &t) {
            if inst.last_c {
                for k in inst.k.clone() {
                    for y in inst.oy.clone() {
                        for x in inst.ox.clone() {
                            cover[(k * g.oy() + y) * g.ox() + x] += 1;
                        }
                    }
                }
            }
            if inst.k.start == 0 && inst.oy.start == 0 && inst.ox.start == 0 {
                for c in inst.c.clone() {
                    reduction[c] += 1;
                }
            }
        }
        assert!(cover.iter().all(|&v| v == 1), "every output exactly once");
        assert!(
            reduction.iter().all(|&v| v == 1),
            "every channel exactly once"
        );
    }

    #[test]
    fn halo_window_clamps_at_borders() {
        let g = conv(); // pad 1, stride 1, fy 3, iy 16
        let t = TileConfig {
            c_t: 8,
            k_t: 12,
            oy_t: 8,
            ox_t: 16,
        };
        let instances = tiles(&g, &t);
        assert_eq!(instances.len(), 2);
        // First tile: output rows 0..8 need input rows -1..9 -> clamped 0..9.
        assert_eq!(instances[0].input_rows(&g), 0..9);
        // Second tile: output rows 8..16 need input rows 7..17 -> 7..16.
        assert_eq!(instances[1].input_rows(&g), 7..16);
    }

    #[test]
    fn in_dims_halo_formula() {
        let g = conv();
        let t = TileConfig {
            c_t: 8,
            k_t: 12,
            oy_t: 4,
            ox_t: 8,
        };
        assert_eq!(t.in_dims(&g), (6, 10)); // (4-1)*1+3, (8-1)*1+3
        let full = TileConfig::full(&g);
        assert_eq!(full.in_dims(&g), (16, 16)); // capped at input size
    }

    #[test]
    fn chunk_model_rewards_full_width() {
        let g = conv();
        let full_width = TileConfig {
            c_t: 8,
            k_t: 12,
            oy_t: 4,
            ox_t: 16,
        };
        let split_width = TileConfig {
            c_t: 8,
            k_t: 12,
            oy_t: 4,
            ox_t: 8,
        };
        let fw = &tiles(&g, &full_width)[0];
        let sw = &tiles(&g, &split_width)[0];
        assert_eq!(fw.input_chunks(&g), 8); // one per channel
        assert_eq!(sw.input_chunks(&g), 8 * sw.input_rows(&g).len());
    }

    #[test]
    fn depthwise_locksteps_channels() {
        let g = LayerGeometry::depthwise(6, 8, 8, 3, 3, (1, 1), (1, 1, 1, 1));
        let t = TileConfig {
            c_t: 4,
            k_t: 4,
            oy_t: 8,
            ox_t: 8,
        };
        let instances = tiles(&g, &t);
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].c, instances[0].k);
        assert!(instances.iter().all(|i| i.first_c && i.last_c));
    }

    #[test]
    fn partial_sums_suppress_output_dma() {
        let g = conv();
        let t = TileConfig {
            c_t: 4,
            k_t: 12,
            oy_t: 16,
            ox_t: 16,
        };
        let instances = tiles(&g, &t);
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].output_bytes(&g), 0); // first c slice
        assert!(instances[1].output_bytes(&g) > 0); // last c slice
    }

    #[test]
    fn macs_sum_to_layer_total() {
        let g = conv();
        let t = TileConfig {
            c_t: 3,
            k_t: 5,
            oy_t: 6,
            ox_t: 7,
        };
        let total: u64 = tiles(&g, &t).iter().map(|i| i.macs(&g)).sum();
        assert_eq!(total, g.macs());
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn oversized_tile_panics() {
        let g = conv();
        let t = TileConfig {
            c_t: 9,
            k_t: 12,
            oy_t: 16,
            ox_t: 16,
        };
        t.validate(&g);
    }
}
