//! Layer geometry descriptions.

use htvm_ir::{DType, Padding2d};
use serde::{Deserialize, Serialize};

/// The kind of an accelerator-eligible layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard 2-D convolution (`[K,C,Fy,Fx]` weights).
    Conv2d,
    /// Depthwise 2-D convolution (`[C,Fy,Fx]` weights, `K == C`).
    DepthwiseConv2d,
    /// Fully-connected layer (`[K,C]` weights, no spatial dims).
    Dense,
    /// Element-wise residual addition (no weights; two inputs).
    Add,
    /// Batched integer matmul (attention). Both operands are runtime
    /// activations; the second is staged through the weight memory
    /// tile-by-tile like weight data, but re-fetched per batch.
    MatMul,
}

/// Geometry of one layer as seen by the tiler: the dimensions of the
/// paper's Eq. 1–5 (`C`, `K`, `i_x`, `i_y`, filter, strides, padding) plus
/// the operand precisions that determine byte sizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerGeometry {
    /// Layer kind.
    pub kind: LayerKind,
    /// Input channels `C` (input features for dense).
    pub c: usize,
    /// Output channels `K` (output neurons for dense; equals `c` for
    /// depthwise and add).
    pub k: usize,
    /// Input width `i_x` (1 for dense).
    pub ix: usize,
    /// Input height `i_y` (1 for dense).
    pub iy: usize,
    /// Filter width `F_x` (1 for dense/add).
    pub fx: usize,
    /// Filter height `F_y` (1 for dense/add).
    pub fy: usize,
    /// Stride `(s_y, s_x)`.
    pub strides: (usize, usize),
    /// Zero padding.
    pub padding: Padding2d,
    /// Weight precision (`I8` for the digital accelerator, `Ternary` for
    /// the analog IMC array).
    pub w_dtype: DType,
    /// Activation precision (inputs and requantized outputs).
    pub act_dtype: DType,
    /// For [`LayerKind::MatMul`]: the second operand is `[H, N, D]`
    /// (reduced over its last axis) instead of `[H, D, N]`. Skipped when
    /// `false` so pre-matmul serialized geometries round-trip
    /// byte-identically.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub transpose_b: bool,
}

impl LayerGeometry {
    /// Convenience constructor for a standard convolution with `i8`
    /// weights and activations.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        c: usize,
        k: usize,
        iy: usize,
        ix: usize,
        fy: usize,
        fx: usize,
        strides: (usize, usize),
        padding: impl Into<Padding2d>,
    ) -> Self {
        LayerGeometry {
            kind: LayerKind::Conv2d,
            c,
            k,
            ix,
            iy,
            fx,
            fy,
            strides,
            padding: padding.into(),
            w_dtype: DType::I8,
            act_dtype: DType::I8,
            transpose_b: false,
        }
    }

    /// Convenience constructor for a depthwise convolution with `i8`
    /// weights and activations.
    #[must_use]
    pub fn depthwise(
        c: usize,
        iy: usize,
        ix: usize,
        fy: usize,
        fx: usize,
        strides: (usize, usize),
        padding: impl Into<Padding2d>,
    ) -> Self {
        LayerGeometry {
            kind: LayerKind::DepthwiseConv2d,
            c,
            k: c,
            ix,
            iy,
            fx,
            fy,
            strides,
            padding: padding.into(),
            w_dtype: DType::I8,
            act_dtype: DType::I8,
            transpose_b: false,
        }
    }

    /// Convenience constructor for a dense layer with `i8` weights and
    /// activations.
    #[must_use]
    pub fn dense(c: usize, k: usize) -> Self {
        LayerGeometry {
            kind: LayerKind::Dense,
            c,
            k,
            ix: 1,
            iy: 1,
            fx: 1,
            fy: 1,
            strides: (1, 1),
            padding: Padding2d::same(0),
            w_dtype: DType::I8,
            act_dtype: DType::I8,
            transpose_b: false,
        }
    }

    /// Convenience constructor for an element-wise residual addition over a
    /// `[C, H, W]` activation.
    #[must_use]
    pub fn add(c: usize, iy: usize, ix: usize) -> Self {
        LayerGeometry {
            kind: LayerKind::Add,
            c,
            k: c,
            ix,
            iy,
            fx: 1,
            fy: 1,
            strides: (1, 1),
            padding: Padding2d::same(0),
            w_dtype: DType::I8,
            act_dtype: DType::I8,
            transpose_b: false,
        }
    }

    /// Convenience constructor for a batched matmul of `[H, M, D]` against
    /// `[H, D, N]` (or `[H, N, D]` with `transpose_b`). In tiler terms the
    /// reduction `D` maps to `c`, the output columns `N` to `k`, the
    /// sequence rows `M` to `iy` (1×1 filter, so `oy == M`) and the batch
    /// `H` to `ix` — a rectangular sequence×head geometry with no spatial
    /// halo.
    #[must_use]
    pub fn matmul(d: usize, n: usize, m: usize, h: usize, transpose_b: bool) -> Self {
        LayerGeometry {
            kind: LayerKind::MatMul,
            c: d,
            k: n,
            ix: h,
            iy: m,
            fx: 1,
            fy: 1,
            strides: (1, 1),
            padding: Padding2d::same(0),
            w_dtype: DType::I8,
            act_dtype: DType::I8,
            transpose_b,
        }
    }

    /// Switches the weight precision (builder style).
    #[must_use]
    pub fn with_weight_dtype(mut self, dtype: DType) -> Self {
        self.w_dtype = dtype;
        self
    }

    /// Output height `o_y`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input.
    #[must_use]
    pub fn oy(&self) -> usize {
        out_dim(
            self.iy,
            self.fy,
            self.strides.0,
            self.padding.top,
            self.padding.bottom,
        )
    }

    /// Output width `o_x`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input.
    #[must_use]
    pub fn ox(&self) -> usize {
        out_dim(
            self.ix,
            self.fx,
            self.strides.1,
            self.padding.left,
            self.padding.right,
        )
    }

    /// Total multiply-accumulate operations of the layer (0 for add).
    #[must_use]
    pub fn macs(&self) -> u64 {
        let spatial = (self.oy() * self.ox()) as u64;
        match self.kind {
            LayerKind::Conv2d => (self.k * self.c * self.fy * self.fx) as u64 * spatial,
            LayerKind::DepthwiseConv2d => (self.c * self.fy * self.fx) as u64 * spatial,
            LayerKind::Dense => (self.k * self.c) as u64,
            LayerKind::Add => 0,
            // N·D per output row, M rows, H batches.
            LayerKind::MatMul => (self.k * self.c) as u64 * spatial,
        }
    }

    /// Number of weight elements (for matmul: the staged second operand).
    #[must_use]
    pub fn weight_elems(&self) -> usize {
        match self.kind {
            LayerKind::Conv2d => self.k * self.c * self.fy * self.fx,
            LayerKind::DepthwiseConv2d => self.c * self.fy * self.fx,
            LayerKind::Dense => self.k * self.c,
            LayerKind::Add => 0,
            // The b operand is [H, D, N] (either layout): one N×D slab
            // per batch, staged through the weight memory.
            LayerKind::MatMul => self.k * self.c * self.ix,
        }
    }

    /// Packed storage bytes of the full weight tensor.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.w_dtype.storage_bytes(self.weight_elems())
    }

    /// Bytes of the full input activation.
    #[must_use]
    pub fn input_bytes(&self) -> usize {
        let n = self.c * self.iy * self.ix;
        let both = if self.kind == LayerKind::Add { 2 } else { 1 };
        self.act_dtype.storage_bytes(n) * both
    }

    /// Bytes of the full output activation.
    #[must_use]
    pub fn output_bytes(&self) -> usize {
        self.act_dtype.storage_bytes(self.k * self.oy() * self.ox())
    }
}

fn out_dim(input: usize, kernel: usize, stride: usize, lo: usize, hi: usize) -> usize {
    let padded = input + lo + hi;
    assert!(
        kernel > 0 && stride > 0 && padded >= kernel,
        "layer window does not fit padded input"
    );
    (padded - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_dims() {
        let g = LayerGeometry::conv2d(16, 32, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        assert_eq!((g.oy(), g.ox()), (32, 32));
        let g = LayerGeometry::conv2d(16, 32, 32, 32, 3, 3, (2, 2), (1, 1, 1, 1));
        assert_eq!((g.oy(), g.ox()), (16, 16));
    }

    #[test]
    fn macs_and_sizes() {
        let g = LayerGeometry::conv2d(16, 32, 8, 8, 3, 3, (1, 1), (1, 1, 1, 1));
        assert_eq!(g.macs(), 32 * 16 * 9 * 64);
        assert_eq!(g.weight_bytes(), 32 * 16 * 9);
        assert_eq!(g.input_bytes(), 16 * 64);
        assert_eq!(g.output_bytes(), 32 * 64);
    }

    #[test]
    fn ternary_weights_pack() {
        let g = LayerGeometry::conv2d(16, 32, 8, 8, 3, 3, (1, 1), (1, 1, 1, 1))
            .with_weight_dtype(DType::Ternary);
        // 4608 elements * 2 bits = 1152 bytes.
        assert_eq!(g.weight_bytes(), 1152);
    }

    #[test]
    fn dense_is_spatial_free() {
        let g = LayerGeometry::dense(640, 128);
        assert_eq!((g.oy(), g.ox()), (1, 1));
        assert_eq!(g.macs(), 640 * 128);
        assert_eq!(g.weight_bytes(), 640 * 128);
    }

    #[test]
    fn add_has_two_inputs_no_weights() {
        let g = LayerGeometry::add(32, 8, 8);
        assert_eq!(g.macs(), 0);
        assert_eq!(g.weight_bytes(), 0);
        assert_eq!(g.input_bytes(), 2 * 32 * 64);
    }

    #[test]
    fn matmul_geometry_maps_attention_dims() {
        // [2, 128, 32] × [2, 32, 128]ᵀ-free: D=32, N=128, M=128, H=2.
        let g = LayerGeometry::matmul(32, 128, 128, 2, true);
        assert_eq!((g.oy(), g.ox()), (128, 2));
        assert_eq!(g.macs(), 128 * 32 * 128 * 2);
        assert_eq!(g.weight_bytes(), 128 * 32 * 2, "staged b operand");
        assert_eq!(g.input_bytes(), 32 * 128 * 2, "a operand only");
        assert_eq!(g.output_bytes(), 128 * 128 * 2);
        assert!(g.transpose_b);
    }

    #[test]
    fn depthwise_k_equals_c() {
        let g = LayerGeometry::depthwise(64, 25, 5, 3, 3, (1, 1), (1, 1, 1, 1));
        assert_eq!(g.k, 64);
        assert_eq!(g.macs(), 64 * 9 * 25 * 5);
    }
}
