//! Measurement-calibrated cycle prediction for candidate tiles.
//!
//! The paper's Eq. 3–5 heuristics reward *proxies* for speed (PE
//! alignment, transfer coalescing). A [`CostModel`] instead predicts the
//! cycles a candidate [`TileConfig`] would cost end to end — DMA traffic,
//! weight (re)loads, per-tile host overhead and engine compute — from
//! per-engine coefficients fit offline against `KERNELS_BENCH.json`
//! measurements (see `docs/CALIBRATION.md`). The objective then scores a
//! tile by `γ · predicted(full) / predicted(tile)`, a number in `(0, 1]`
//! that is 1 exactly when tiling costs nothing.
//!
//! # Prediction, not simulation
//!
//! [`CostModel::predicted_cycles`] is a *closed-form estimate* over the
//! tile partition, evaluated in `O(1)` per candidate — it never enumerates
//! tile instances. It mirrors the simulator's accounting (transfer counts
//! from the C–y–x layout, weight reloads on reduction splits, alignment
//! quantization of the PE array) but rounds per-transfer and per-pass
//! ceilings at the aggregate level and ignores border-halo clamping, so it
//! tracks rather than reproduces simulated totals. That is the right
//! trade: the solver compares thousands of candidates per layer and only
//! the *ordering* matters.
//!
//! # Solver contract: monotone in `o_yᵗ`
//!
//! [`solve`](crate::solve) closes the output-height dimension analytically
//! and requires every objective term to be non-decreasing in `o_yᵗ`. The
//! predictor is built to honor that: every aggregate is a product of
//! factors that are constant or non-increasing in `o_yᵗ`. The one subtle
//! term is the input-row sum over the y partition, which collapses to
//!
//! ```text
//! Σ_y rows = s_y · o_y + n_y · (max(F_y, s_y) − s_y)
//! ```
//!
//! — clamping the halo below at the stride keeps the sum non-increasing in
//! the tile height even for stride > filter layers (where real halos would
//! shrink under splitting). `tests::score_is_monotone_in_oy` sweeps the
//! invariant.

use crate::{LayerGeometry, LayerKind, TileConfig};
use serde::{Deserialize, Serialize};

/// Per-engine compute coefficients of a [`CostModel`].
///
/// The variants mirror the two DIANA accelerators' architectural shapes;
/// the *values* come from calibration, not from the platform defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EngineModel {
    /// A digital PE array: compute quantized to `⌈Cᵗ/rows⌉·⌈i_xᵗ/cols⌉`
    /// blocks, weights streamed in over the DMA.
    Digital {
        /// Input-channel lanes (the Eq. 3 alignment quantum).
        pe_rows: usize,
        /// Input-width lanes (the Eq. 4 alignment quantum).
        pe_cols: usize,
        /// Depthwise throughput in MACs per cycle × 100.
        dw_macs_per_cycle_x100: u64,
        /// Element-wise add throughput, elements per cycle.
        add_elems_per_cycle: u64,
        /// Pipeline efficiency percent (`cycles = ideal · 100 / eff`).
        efficiency_pct: u64,
    },
    /// An analog in-memory-compute macro: weight-stationary row
    /// programming, then one pass per output spatial position.
    Analog {
        /// Array rows (caps the mapped `Cᵗ·Fy·Fx`).
        rows: usize,
        /// Array columns (output channels per pass).
        cols: usize,
        /// Cycles to program one weight row.
        row_load_cycles: u64,
        /// Cycles per analog pass.
        pass_cycles: u64,
        /// Pipeline efficiency percent.
        efficiency_pct: u64,
    },
}

/// A calibrated per-engine cycle model for scoring candidate tiles.
///
/// Attach one to a [`TilingObjective`](crate::TilingObjective) (via
/// [`TilingObjective::calibrated`](crate::TilingObjective::calibrated) or
/// the `cost_model` field) and the objective gains a
/// `γ · predicted(full) / predicted(tile)` term. The `version` is part of
/// the model's cache identity: bumping it (as the `calibrate` tool does
/// when the fit procedure changes) keeps artifacts produced under
/// different calibrations from ever aliasing in the tile cache or the
/// artifact store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Calibration schema/fit version (mixed into cache keys).
    pub version: u32,
    /// Weight of the predicted-cycle term in the Eq. 1 sum.
    pub gamma: f64,
    /// DMA setup cycles per 1-D transfer.
    pub dma_setup: u64,
    /// DMA payload bytes per cycle.
    pub dma_bytes_per_cycle: u64,
    /// Host cycles per kernel invocation (once per layer).
    pub kernel_call_overhead: u64,
    /// Host cycles per tile dispatch.
    pub tile_overhead: u64,
    /// Engine compute coefficients.
    pub engine: EngineModel,
}

impl CostModel {
    /// The model's identity as a flat bit vector, for exact (bitwise)
    /// cache keying — the same convention the tile cache already uses for
    /// objective weights.
    #[must_use]
    pub fn identity_bits(&self) -> Vec<u64> {
        let mut v = vec![
            u64::from(self.version),
            self.gamma.to_bits(),
            self.dma_setup,
            self.dma_bytes_per_cycle,
            self.kernel_call_overhead,
            self.tile_overhead,
        ];
        match self.engine {
            EngineModel::Digital {
                pe_rows,
                pe_cols,
                dw_macs_per_cycle_x100,
                add_elems_per_cycle,
                efficiency_pct,
            } => {
                v.push(0);
                v.extend([
                    pe_rows as u64,
                    pe_cols as u64,
                    dw_macs_per_cycle_x100,
                    add_elems_per_cycle,
                    efficiency_pct,
                ]);
            }
            EngineModel::Analog {
                rows,
                cols,
                row_load_cycles,
                pass_cycles,
                efficiency_pct,
            } => {
                v.push(1);
                v.extend([
                    rows as u64,
                    cols as u64,
                    row_load_cycles,
                    pass_cycles,
                    efficiency_pct,
                ]);
            }
        }
        v
    }

    /// The objective term: `predicted(full tile) / predicted(tile)`, in
    /// `(0, 1]`. Non-decreasing in `o_yᵗ` (see the module docs).
    #[must_use]
    pub fn score_term(&self, geom: &LayerGeometry, tile: &TileConfig) -> f64 {
        let full = self.predicted_cycles(geom, &TileConfig::full(geom)).max(1);
        let this = self.predicted_cycles(geom, tile).max(1);
        full as f64 / this as f64
    }

    /// Predicted end-to-end cycles for executing the layer under `tile`:
    /// host overhead + input/weight/output DMA + engine compute, as a
    /// closed form over the tile partition (no instance enumeration).
    #[must_use]
    pub fn predicted_cycles(&self, geom: &LayerGeometry, tile: &TileConfig) -> u64 {
        let lockstep = matches!(geom.kind, LayerKind::DepthwiseConv2d | LayerKind::Add);
        let (oy, ox) = (geom.oy(), geom.ox());
        let n_k = geom.k.div_ceil(tile.k_t);
        let n_y = oy.div_ceil(tile.oy_t);
        let n_x = ox.div_ceil(tile.ox_t);
        let n_c = if lockstep {
            1
        } else {
            geom.c.div_ceil(tile.c_t)
        };
        let n_tiles = (n_k * n_y * n_x * n_c) as u64;

        let overhead = self.kernel_call_overhead + self.tile_overhead * n_tiles;

        // Exact partition sums of input rows/cols over the y/x tile grids,
        // with the halo clamped below at the stride (module docs).
        let (sy, sx) = geom.strides;
        let total_rows = sy * oy + n_y * (geom.fy.max(sy) - sy);
        let total_cols = sx * ox + n_x * (geom.fx.max(sx) - sx);

        // Input traffic. Every (y, x, c) position fetches its slice; the
        // simulator re-fetches per output-channel block unless a single
        // slice stays resident across the whole layer. Lockstep layers
        // fetch each channel block exactly once.
        let k_fetch = if lockstep || n_y * n_x * n_c == 1 {
            1
        } else {
            n_k
        };
        let operands = if geom.kind == LayerKind::Add { 2 } else { 1 };
        let in_elems = geom.c * total_rows * total_cols * k_fetch;
        let in_bytes = (geom.act_dtype.storage_bytes(in_elems) * operands) as u64;
        // Transfer counts from the C–y–x layout (one per contiguous run).
        let in_chunks = (operands
            * if n_x > 1 {
                k_fetch * geom.c * total_rows * n_x
            } else if n_y > 1 {
                k_fetch * geom.c * n_y
            } else if lockstep {
                n_k
            } else if n_c == 1 {
                1
            } else {
                n_k * n_c
            }) as u64;
        let input_dma = self.dma_setup * in_chunks + in_bytes.div_ceil(self.dma_bytes_per_cycle);

        // Weight traffic. Weights reload whenever the (k, c) slice
        // changes: once per k block when the reduction is unsplit, once
        // per tile otherwise.
        let weight = if geom.kind == LayerKind::Add {
            0
        } else {
            // Matmul stages its b operand per (k, c, batch) slice: it stays
            // resident across output rows only when reduction *and* batch
            // are unsplit. Conv/dense weights key on (k, c) alone.
            let resident = if geom.kind == LayerKind::MatMul {
                n_c == 1 && n_x == 1
            } else {
                n_c == 1
            };
            let loads = if resident { n_k as u64 } else { n_tiles };
            match self.engine {
                EngineModel::Digital { .. } => {
                    let sweeps = if resident {
                        1
                    } else if geom.kind == LayerKind::MatMul {
                        n_y
                    } else {
                        n_y * n_x
                    };
                    let bytes = (geom.weight_bytes() * sweeps) as u64;
                    self.dma_setup * loads + bytes.div_ceil(self.dma_bytes_per_cycle)
                }
                EngineModel::Analog {
                    rows,
                    row_load_cycles,
                    ..
                } => {
                    let per_load = match geom.kind {
                        LayerKind::Conv2d => tile.c_t * geom.fy * geom.fx,
                        LayerKind::Dense | LayerKind::MatMul => tile.c_t,
                        LayerKind::DepthwiseConv2d | LayerKind::Add => 0,
                    };
                    loads * per_load.min(rows) as u64 * row_load_cycles
                }
            }
        };

        // Output traffic: every output element exactly once.
        let out_bytes = geom.act_dtype.storage_bytes(geom.k * oy * ox) as u64;
        let out_chunks = (if n_x > 1 {
            geom.k * oy * n_x
        } else if n_k * n_y > 1 {
            geom.k * n_y
        } else {
            1
        }) as u64;
        let output_dma = self.dma_setup * out_chunks + out_bytes.div_ceil(self.dma_bytes_per_cycle);

        overhead + input_dma + weight + output_dma + self.compute_cycles(geom, tile)
    }

    /// Engine compute over the whole partition (constant in `o_yᵗ`: the
    /// output-height tiles always sum to `o_y` and the alignment ceilings
    /// quantize only channel and width dimensions).
    fn compute_cycles(&self, geom: &LayerGeometry, tile: &TileConfig) -> u64 {
        let lockstep = matches!(geom.kind, LayerKind::DepthwiseConv2d | LayerKind::Add);
        let (oy, ox) = (geom.oy(), geom.ox());
        let n_c = if lockstep {
            1
        } else {
            geom.c.div_ceil(tile.c_t)
        };
        let n_k = geom.k.div_ceil(tile.k_t);
        let n_x = ox.div_ceil(tile.ox_t);
        // Σ over a partition of `dim` into `n` tiles of `t` (plus a tail)
        // of `⌈len/q⌉`.
        let blocks = |dim: usize, t: usize, n: usize, q: usize| -> u64 {
            let tail = dim - (n - 1) * t;
            ((n - 1) * t.div_ceil(q) + tail.div_ceil(q)) as u64
        };
        match self.engine {
            EngineModel::Digital {
                pe_rows,
                pe_cols,
                dw_macs_per_cycle_x100,
                add_elems_per_cycle,
                efficiency_pct,
            } => {
                let ideal = match geom.kind {
                    LayerKind::Conv2d => {
                        let c_blk = blocks(geom.c, tile.c_t, n_c, pe_rows);
                        // Interior input-width per x tile, clamped to the
                        // real input; the x tail uses its own halo.
                        let ix_of =
                            |ox_len: usize| ((ox_len - 1) * geom.strides.1 + geom.fx).min(geom.ix);
                        let ox_tail = ox - (n_x - 1) * tile.ox_t;
                        let x_blk = ((n_x - 1) * ix_of(tile.ox_t).div_ceil(pe_cols)
                            + ix_of(ox_tail).div_ceil(pe_cols))
                            as u64;
                        (geom.k * oy * geom.fy * geom.fx) as u64 * c_blk * x_blk
                    }
                    LayerKind::Dense => {
                        blocks(geom.c, tile.c_t, n_c, pe_rows)
                            * blocks(geom.k, tile.k_t, n_k, pe_cols)
                    }
                    // One PE-array pass per (sequence row, c block, k
                    // block); constant in `o_yᵗ` like dense.
                    LayerKind::MatMul => {
                        (oy * ox) as u64
                            * blocks(geom.c, tile.c_t, n_c, pe_rows)
                            * blocks(geom.k, tile.k_t, n_k, pe_cols)
                    }
                    LayerKind::DepthwiseConv2d => geom.macs() * 100 / dw_macs_per_cycle_x100.max(1),
                    LayerKind::Add => {
                        ((geom.k * oy * ox) as u64).div_ceil(add_elems_per_cycle.max(1))
                    }
                };
                (ideal * 100).div_ceil(efficiency_pct.max(1))
            }
            EngineModel::Analog {
                cols,
                pass_cycles,
                efficiency_pct,
                ..
            } => {
                let ideal = match geom.kind {
                    LayerKind::Conv2d | LayerKind::Dense => {
                        (n_c * oy * ox) as u64 * blocks(geom.k, tile.k_t, n_k, cols) * pass_cycles
                    }
                    LayerKind::Add => ((geom.k * oy * ox) as u64).div_ceil(16),
                    // Never dispatched to analog; priced as raw MACs so
                    // the term stays defined.
                    LayerKind::DepthwiseConv2d | LayerKind::MatMul => geom.macs(),
                };
                (ideal * 100).div_ceil(efficiency_pct.max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryBudget, TilingObjective};

    fn digital_model() -> CostModel {
        CostModel {
            version: 1,
            gamma: 4.0,
            dma_setup: 30,
            dma_bytes_per_cycle: 8,
            kernel_call_overhead: 800,
            tile_overhead: 300,
            engine: EngineModel::Digital {
                pe_rows: 16,
                pe_cols: 16,
                dw_macs_per_cycle_x100: 375,
                add_elems_per_cycle: 16,
                efficiency_pct: 40,
            },
        }
    }

    fn analog_model() -> CostModel {
        CostModel {
            version: 1,
            gamma: 4.0,
            dma_setup: 30,
            dma_bytes_per_cycle: 8,
            kernel_call_overhead: 800,
            tile_overhead: 300,
            engine: EngineModel::Analog {
                rows: 1152,
                cols: 512,
                row_load_cycles: 140,
                pass_cycles: 8,
                efficiency_pct: 50,
            },
        }
    }

    #[test]
    fn full_tile_scores_one() {
        let g = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let cm = digital_model();
        let t = cm.score_term(&g, &TileConfig::full(&g));
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn splitting_costs_cycles() {
        let g = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let cm = digital_model();
        let full = cm.predicted_cycles(&g, &TileConfig::full(&g));
        let split = cm.predicted_cycles(
            &g,
            &TileConfig {
                c_t: 32,
                k_t: 32,
                oy_t: 8,
                ox_t: 16,
            },
        );
        assert!(
            split > full,
            "splitting must predict more cycles ({split} vs {full})"
        );
    }

    #[test]
    fn misalignment_penalized_like_eq3() {
        // 17 channels cost a second row pass just like the simulator.
        let g16 = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let cm = digital_model();
        let aligned = cm.predicted_cycles(
            &g16,
            &TileConfig {
                c_t: 16,
                k_t: 64,
                oy_t: 32,
                ox_t: 32,
            },
        );
        let misaligned = cm.predicted_cycles(
            &g16,
            &TileConfig {
                c_t: 17,
                k_t: 64,
                oy_t: 32,
                ox_t: 32,
            },
        );
        assert!(misaligned > aligned);
    }

    #[test]
    fn reduction_split_pays_weight_reloads() {
        let g = LayerGeometry::conv2d(64, 64, 16, 16, 3, 3, (1, 1), (1, 1, 1, 1));
        let cm = digital_model();
        let unsplit = cm.predicted_cycles(
            &g,
            &TileConfig {
                c_t: 64,
                k_t: 16,
                oy_t: 8,
                ox_t: 16,
            },
        );
        let split = cm.predicted_cycles(
            &g,
            &TileConfig {
                c_t: 32,
                k_t: 16,
                oy_t: 8,
                ox_t: 16,
            },
        );
        assert!(
            split > unsplit,
            "reduction splits reload weights per tile ({split} vs {unsplit})"
        );
    }

    #[test]
    fn analog_charges_row_programming() {
        use htvm_ir::DType;
        let g = LayerGeometry::conv2d(64, 64, 16, 16, 3, 3, (1, 1), (1, 1, 1, 1))
            .with_weight_dtype(DType::Ternary);
        let cm = analog_model();
        let one = cm.predicted_cycles(&g, &TileConfig::full(&g));
        // Splitting k doubles the weight-programming passes.
        let split = cm.predicted_cycles(
            &g,
            &TileConfig {
                c_t: 64,
                k_t: 32,
                oy_t: 16,
                ox_t: 16,
            },
        );
        assert!(split > one);
    }

    #[test]
    fn score_is_monotone_in_oy() {
        // The solver's o_y bisection requires every objective term to be
        // non-decreasing in o_yᵗ. Sweep the predictor across shapes that
        // exercise halos, strides > filter, padding and both engines.
        let geoms = [
            LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1)),
            LayerGeometry::conv2d(3, 16, 32, 32, 3, 3, (2, 2), (1, 1, 1, 1)),
            LayerGeometry::conv2d(16, 32, 25, 5, 1, 1, (1, 1), (0, 0, 0, 0)),
            LayerGeometry::conv2d(8, 8, 24, 24, 1, 1, (2, 2), (0, 0, 0, 0)), // stride > filter
            LayerGeometry::depthwise(64, 25, 5, 3, 3, (1, 1), (1, 1, 1, 1)),
            LayerGeometry::add(32, 16, 16),
        ];
        for cm in [digital_model(), analog_model()] {
            for g in &geoms {
                for c_t in [1, 3, 16, g.c] {
                    if c_t > g.c {
                        continue;
                    }
                    for ox_t in [1, g.ox().div_ceil(2), g.ox()] {
                        let k_t = if matches!(g.kind, LayerKind::DepthwiseConv2d | LayerKind::Add) {
                            c_t
                        } else {
                            g.k
                        };
                        let mut prev = f64::NEG_INFINITY;
                        for oy_t in 1..=g.oy() {
                            let tile = TileConfig {
                                c_t,
                                k_t,
                                oy_t,
                                ox_t,
                            };
                            let s = cm.score_term(g, &tile);
                            assert!(
                                s >= prev - 1e-12,
                                "score must not decrease in oy_t: {:?} c_t={c_t} ox_t={ox_t} \
                                 oy_t={oy_t} gave {s} after {prev}",
                                g.kind
                            );
                            prev = s;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn objective_with_cost_model_prefers_cheaper_tiles() {
        let g = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let budget = MemoryBudget::unified(1 << 20);
        let obj = TilingObjective::calibrated(digital_model());
        let tall = TileConfig {
            c_t: 64,
            k_t: 64,
            oy_t: 16,
            ox_t: 32,
        };
        let shredded = TileConfig {
            c_t: 8,
            k_t: 8,
            oy_t: 2,
            ox_t: 4,
        };
        assert!(obj.score(&g, &tall, &budget) > obj.score(&g, &shredded, &budget));
    }

    #[test]
    fn identity_bits_distinguish_models() {
        let a = digital_model();
        let mut b = a;
        b.version = 2;
        assert_ne!(a.identity_bits(), b.identity_bits());
        let mut c = a;
        c.gamma = 3.0;
        assert_ne!(a.identity_bits(), c.identity_bits());
        assert_ne!(a.identity_bits(), analog_model().identity_bits());
    }
}
