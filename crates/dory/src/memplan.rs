//! L2 activation memory planning.
//!
//! HTVM "yields a memory schedule for allocating and de-allocating
//! intermediate activation tensors in main memory (L2)" (paper §III). This
//! module implements that planner: given buffer lifetimes over the layer
//! schedule, it assigns non-overlapping byte offsets with a first-fit
//! policy and reports the peak footprint — or an out-of-memory error, which
//! is how the MobileNet CPU-only OoM of Table I surfaces.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A buffer to place: `size` bytes live from step `first_use` through
/// `last_use` inclusive (steps are schedule positions, e.g. layer indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferReq {
    /// Caller-chosen identifier (index into the caller's buffer table).
    pub id: usize,
    /// Size in bytes (zero-sized buffers are legal and take no space).
    pub size: usize,
    /// First schedule step at which the buffer must exist.
    pub first_use: usize,
    /// Last schedule step at which the buffer must exist.
    pub last_use: usize,
}

/// A computed placement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// `(id, offset)` for every requested buffer.
    pub offsets: Vec<(usize, usize)>,
    /// Peak bytes in use at any schedule step.
    pub peak: usize,
}

impl MemoryPlan {
    /// The planned offset of buffer `id`, if it was part of the request.
    #[must_use]
    pub fn offset_of(&self, id: usize) -> Option<usize> {
        self.offsets
            .iter()
            .find(|(bid, _)| *bid == id)
            .map(|&(_, off)| off)
    }
}

/// Planning failure: the buffers cannot be packed into `capacity` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the first-fit packing would have needed.
    pub needed: usize,
    /// The capacity that was exceeded.
    pub capacity: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "activation buffers need {} bytes, exceeding the {} byte capacity",
            self.needed, self.capacity
        )
    }
}

impl Error for OutOfMemory {}

/// Packs buffers into `capacity` bytes with first-fit on lifetime overlap.
///
/// Buffers are placed in order of `first_use` (then decreasing size), each
/// at the lowest offset that does not overlap an already-placed buffer with
/// an intersecting lifetime. The result is deterministic.
///
/// # Errors
///
/// Returns [`OutOfMemory`] (with the peak the packing would need) when the
/// plan exceeds `capacity`.
///
/// # Examples
///
/// ```
/// use htvm_dory::memplan::{BufferReq, plan};
///
/// # fn main() -> Result<(), htvm_dory::memplan::OutOfMemory> {
/// // Two buffers with disjoint lifetimes share the same offset.
/// let reqs = [
///     BufferReq { id: 0, size: 100, first_use: 0, last_use: 1 },
///     BufferReq { id: 1, size: 100, first_use: 2, last_use: 3 },
/// ];
/// let plan = plan(&reqs, 128)?;
/// assert_eq!(plan.peak, 100);
/// assert_eq!(plan.offset_of(0), plan.offset_of(1));
/// # Ok(())
/// # }
/// ```
pub fn plan(reqs: &[BufferReq], capacity: usize) -> Result<MemoryPlan, OutOfMemory> {
    let mut order: Vec<&BufferReq> = reqs.iter().collect();
    order.sort_by_key(|r| (r.first_use, usize::MAX - r.size, r.id));

    let mut placed: Vec<(&BufferReq, usize)> = Vec::with_capacity(reqs.len());
    let mut peak = 0usize;
    for req in order {
        debug_assert!(req.first_use <= req.last_use, "inverted lifetime");
        // Collect intervals occupied by live, overlapping buffers.
        let mut occupied: Vec<(usize, usize)> = placed
            .iter()
            .filter(|(other, _)| lifetimes_overlap(req, other))
            .map(|&(other, off)| (off, off + other.size))
            .collect();
        occupied.sort_unstable();
        // First-fit: walk the gaps.
        let mut offset = 0usize;
        for (lo, hi) in occupied {
            if offset + req.size <= lo {
                break;
            }
            offset = offset.max(hi);
        }
        peak = peak.max(offset + req.size);
        placed.push((req, offset));
    }

    if peak > capacity {
        return Err(OutOfMemory {
            needed: peak,
            capacity,
        });
    }
    let mut offsets: Vec<(usize, usize)> =
        placed.into_iter().map(|(req, off)| (req.id, off)).collect();
    offsets.sort_unstable();
    Ok(MemoryPlan { offsets, peak })
}

fn lifetimes_overlap(a: &BufferReq, b: &BufferReq) -> bool {
    a.first_use <= b.last_use && b.first_use <= a.last_use
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, size: usize, first: usize, last: usize) -> BufferReq {
        BufferReq {
            id,
            size,
            first_use: first,
            last_use: last,
        }
    }

    #[test]
    fn overlapping_lifetimes_get_disjoint_ranges() {
        let reqs = [req(0, 64, 0, 2), req(1, 64, 1, 3), req(2, 64, 2, 4)];
        let p = plan(&reqs, 1024).unwrap();
        assert_eq!(p.peak, 192);
        // All three alive at step 2: offsets pairwise disjoint.
        let offs: Vec<usize> = (0..3).map(|i| p.offset_of(i).unwrap()).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let (a, b) = (offs[i], offs[j]);
                assert!(a + 64 <= b || b + 64 <= a, "buffers {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn disjoint_lifetimes_reuse_space() {
        let reqs = [req(0, 1000, 0, 1), req(1, 1000, 2, 3), req(2, 1000, 4, 5)];
        let p = plan(&reqs, 1000).unwrap();
        assert_eq!(p.peak, 1000);
    }

    #[test]
    fn gap_filling_first_fit() {
        // Big buffer 0..4 at offset 0, small buffer 0..4 above it; a third
        // buffer alive 2..3 must slot above both, but a fourth alive 5..6
        // reuses offset 0.
        let reqs = [
            req(0, 100, 0, 4),
            req(1, 10, 0, 4),
            req(2, 50, 2, 3),
            req(3, 100, 5, 6),
        ];
        let p = plan(&reqs, 1024).unwrap();
        assert_eq!(p.offset_of(0), Some(0));
        assert_eq!(p.offset_of(1), Some(100));
        assert_eq!(p.offset_of(2), Some(110));
        assert_eq!(p.offset_of(3), Some(0));
        assert_eq!(p.peak, 160);
    }

    #[test]
    fn oom_reports_needed_bytes() {
        let reqs = [req(0, 600, 0, 1), req(1, 600, 0, 1)];
        let err = plan(&reqs, 1000).unwrap_err();
        assert_eq!(err.needed, 1200);
        assert_eq!(err.capacity, 1000);
        assert!(err.to_string().contains("1200"));
    }

    #[test]
    fn zero_sized_buffers_are_fine() {
        let reqs = [req(0, 0, 0, 1), req(1, 10, 0, 1)];
        let p = plan(&reqs, 10).unwrap();
        assert_eq!(p.peak, 10);
    }

    #[test]
    fn empty_request_is_empty_plan() {
        let p = plan(&[], 0).unwrap();
        assert_eq!(p.peak, 0);
        assert!(p.offsets.is_empty());
    }

    #[test]
    fn deterministic() {
        let reqs = [
            req(0, 64, 0, 2),
            req(1, 32, 1, 3),
            req(2, 128, 2, 4),
            req(3, 16, 0, 4),
        ];
        assert_eq!(plan(&reqs, 4096), plan(&reqs, 4096));
    }
}
