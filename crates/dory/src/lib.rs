//! DORY-style hardware-aware tiling and memory planning.
//!
//! This crate reimplements the memory-planning back-end that HTVM
//! integrates from DORY (Burrello et al., IEEE TC 2021; paper §III-B):
//!
//! - [`LayerGeometry`] describes one accelerator-eligible layer,
//! - [`MemoryBudget`] captures the platform's L1 constraints (shared
//!   activation scratchpad, separate weight memories, and — for analog
//!   in-memory-compute — the 2-D macro array geometry),
//! - [`solve`] finds the tile sizes maximizing the paper's Eq. 1 objective
//!   `α·(L1ʷ + L1ᵒᵘᵗ + L1ⁱⁿ) + Σᵢ βᵢ·Hᵢ` subject to the Eq. 2 capacity
//!   constraint, with the DIANA heuristics of Eq. 3–5 available as
//!   [`Heuristic`] terms,
//! - [`TileCache`] memoizes [`solve`] outcomes across layers, threads and
//!   compiles — the solver is a pure function of its inputs, and real
//!   networks repeat layer geometries heavily,
//! - [`tiles`] enumerates the tile loop with exact output coverage (the
//!   contract the simulator's tile executor and the property tests rely on),
//! - [`memplan`] assigns non-overlapping L2 offsets to intermediate
//!   activation buffers (the "memory schedule" HTVM emits alongside code).
//!
//! # Examples
//!
//! ```
//! use htvm_dory::{LayerGeometry, MemoryBudget, TilingObjective, solve};
//!
//! # fn main() -> Result<(), htvm_dory::TilingError> {
//! // A 64-channel 3x3 conv over 32x32, too big for a 32 kB scratchpad.
//! let geom = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
//! let budget = MemoryBudget {
//!     act_bytes: 32 * 1024,
//!     weight_bytes: Some(64 * 1024),
//!     array: None,
//! };
//! let solution = solve(&geom, &budget, &TilingObjective::diana_digital())?;
//! assert!(solution.tile.c_t.is_multiple_of(16)); // Eq. 3 heuristic
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cache;
mod cost;
mod error;
mod geometry;
pub mod memplan;
mod objective;
mod solver;
mod tile;

pub use budget::{tile_fits, tile_memory, ArrayDims, MemoryBudget, TileMemory};
pub use cache::{TileCache, TileCacheStats};
pub use cost::{CostModel, EngineModel};
pub use error::TilingError;
pub use geometry::{LayerGeometry, LayerKind};
pub use objective::{Heuristic, TilingObjective};
pub use solver::{solve, TileSolution};
pub use tile::{tiles, TileConfig, TileInstance};
