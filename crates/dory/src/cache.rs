//! Cross-compile memoization of tiling solves.
//!
//! [`solve`] is a pure function of `(LayerGeometry, MemoryBudget,
//! TilingObjective)`, and real networks repeat geometries heavily (every
//! MobileNet block at a given resolution shares one pointwise geometry, a
//! model recompiled under a second deployment configuration repeats them
//! all). [`TileCache`] is a concurrent memo table over exactly that triple:
//! cloning it is cheap (the table is behind an [`Arc`]) and every clone
//! shares the same entries, so one cache can serve all regions of a
//! lowering pass, all compiles of a [`Compiler`], and all threads of the
//! parallel solve phase at once.
//!
//! Keying: geometries and budgets are hashed structurally. Objectives
//! contain `f64` weights, which have no `Hash`/`Eq`; the key stores their
//! IEEE-754 bit patterns instead ([`f64::to_bits`]). Bitwise keying is
//! *stricter* than numeric equality — `0.0` and `-0.0` key differently —
//! which is the safe direction for a memo table: distinct keys only cost a
//! redundant solve, never a wrong reuse. Infeasibility is cached too
//! (negative entries), so a layer that fits nowhere is proven once.
//!
//! There is no invalidation: a solve's output depends on nothing but its
//! key, so entries never go stale. A cache only needs dropping to bound
//! its footprint, for which [`TileCache::clear`] exists.
//!
//! [`Compiler`]: ../htvm/struct.Compiler.html

use crate::{
    solve, Heuristic, LayerGeometry, MemoryBudget, TileSolution, TilingError, TilingObjective,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The full solve input, with objective weights keyed by bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    geom: LayerGeometry,
    budget: MemoryBudget,
    alpha_bits: u64,
    terms: Vec<(Heuristic, u64)>,
    /// Calibrated cost-model identity ([`CostModel::identity_bits`],
    /// which includes the calibration version): two objectives differing
    /// only in their calibration must never alias to one solution.
    cost_model: Option<Vec<u64>>,
}

impl CacheKey {
    fn new(geom: &LayerGeometry, budget: &MemoryBudget, objective: &TilingObjective) -> Self {
        CacheKey {
            geom: geom.clone(),
            budget: *budget,
            alpha_bits: objective.alpha.to_bits(),
            terms: objective
                .terms
                .iter()
                .map(|(h, beta)| (*h, beta.to_bits()))
                .collect(),
            cost_model: objective
                .cost_model
                .as_ref()
                .map(super::CostModel::identity_bits),
        }
    }
}

#[derive(Default)]
struct CacheInner {
    map: Mutex<HashMap<CacheKey, Result<TileSolution, TilingError>>>,
    solves: AtomicU64,
    hits: AtomicU64,
    negatives: AtomicU64,
    negative_hits: AtomicU64,
}

/// A concurrent, shareable memo table for [`solve`] (see the module
/// docs above).
///
/// Clones share storage and counters; [`TileCache::default`] starts empty.
#[derive(Clone, Default)]
pub struct TileCache {
    inner: Arc<CacheInner>,
}

impl TileCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        TileCache::default()
    }

    /// [`solve`], memoized: returns the cached outcome (including cached
    /// infeasibility) when this triple has been solved before, and solves
    /// and records it otherwise. The boolean is `true` on a cache hit.
    ///
    /// Two threads racing on the same fresh key may both solve it; the
    /// solver is pure, so both compute the identical entry and either
    /// insert is fine.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::DoesNotFit`] exactly when [`solve`] does.
    pub fn solve_cached(
        &self,
        geom: &LayerGeometry,
        budget: &MemoryBudget,
        objective: &TilingObjective,
    ) -> (Result<TileSolution, TilingError>, bool) {
        let key = CacheKey::new(geom, budget, objective);
        if let Some(cached) = self
            .inner
            .map
            .lock()
            .expect("tile cache poisoned")
            .get(&key)
        {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            if cached.is_err() {
                self.inner.negative_hits.fetch_add(1, Ordering::Relaxed);
            }
            return (cached.clone(), true);
        }
        // Solve outside the lock: solves dominate, and holding the mutex
        // across one would serialize the parallel solve phase.
        let result = solve(geom, budget, objective);
        self.inner.solves.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            self.inner.negatives.fetch_add(1, Ordering::Relaxed);
        }
        self.inner
            .map
            .lock()
            .expect("tile cache poisoned")
            .insert(key, result.clone());
        (result, false)
    }

    /// Solves performed through this cache (misses), over its lifetime.
    #[must_use]
    pub fn solves(&self) -> u64 {
        self.inner.solves.load(Ordering::Relaxed)
    }

    /// Lookups answered from the table, over the cache's lifetime.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Infeasible (negative) outcomes recorded by the solver — layers
    /// proven not to fit their budget, each proven exactly once.
    #[must_use]
    pub fn negatives(&self) -> u64 {
        self.inner.negatives.load(Ordering::Relaxed)
    }

    /// Lookups answered from a negative entry (a subset of
    /// [`TileCache::hits`]): re-asked infeasibilities that skipped the
    /// solver.
    #[must_use]
    pub fn negative_hits(&self) -> u64 {
        self.inner.negative_hits.load(Ordering::Relaxed)
    }

    /// Number of distinct solve inputs currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.map.lock().expect("tile cache poisoned").len()
    }

    /// `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are kept: they describe history, not
    /// contents).
    pub fn clear(&self) {
        self.inner.map.lock().expect("tile cache poisoned").clear();
    }

    /// A point-in-time snapshot of the cache's counters, in a plain
    /// serializable struct — service stats endpoints and bench reports
    /// embed this rather than holding the live cache.
    #[must_use]
    pub fn stats(&self) -> TileCacheStats {
        TileCacheStats {
            entries: self.len() as u64,
            solves: self.solves(),
            hits: self.hits(),
            negatives: self.negatives(),
            negative_hits: self.negative_hits(),
        }
    }
}

/// Snapshot of a [`TileCache`]'s counters (see [`TileCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TileCacheStats {
    /// Distinct solve inputs currently stored.
    pub entries: u64,
    /// Solves performed (misses) over the cache's lifetime.
    pub solves: u64,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Infeasible outcomes recorded.
    pub negatives: u64,
    /// Lookups answered from a negative entry.
    pub negative_hits: u64,
}

impl fmt::Debug for TileCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TileCache")
            .field("entries", &self.len())
            .field("solves", &self.solves())
            .field("hits", &self.hits())
            .field("negatives", &self.negatives())
            .field("negative_hits", &self.negative_hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> MemoryBudget {
        MemoryBudget {
            act_bytes: 32 * 1024,
            weight_bytes: Some(64 * 1024),
            array: None,
        }
    }

    #[test]
    fn repeat_solves_hit_and_match_direct_solve() {
        let cache = TileCache::new();
        let geom = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let obj = TilingObjective::diana_digital();
        let (first, hit1) = cache.solve_cached(&geom, &budget(), &obj);
        let (second, hit2) = cache.solve_cached(&geom, &budget(), &obj);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first.as_ref().unwrap(), second.as_ref().unwrap());
        assert_eq!(first.unwrap(), solve(&geom, &budget(), &obj).unwrap());
        assert_eq!((cache.solves(), cache.hits(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn infeasible_outcomes_are_cached_too() {
        let cache = TileCache::new();
        let geom = LayerGeometry::dense(4096, 4096);
        let tiny = MemoryBudget::unified(4);
        let obj = TilingObjective::memory_only();
        let (r1, _) = cache.solve_cached(&geom, &tiny, &obj);
        let (r2, hit) = cache.solve_cached(&geom, &tiny, &obj);
        assert!(matches!(r1, Err(TilingError::DoesNotFit { .. })));
        assert_eq!(r1, r2);
        assert!(hit);
        assert_eq!(cache.solves(), 1);
        assert_eq!(
            (cache.negatives(), cache.negative_hits()),
            (1, 1),
            "one infeasibility proven, one answered from the negative entry"
        );
    }

    #[test]
    fn feasible_solves_leave_negative_counters_untouched() {
        let cache = TileCache::new();
        let geom = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let obj = TilingObjective::diana_digital();
        let (ok, _) = cache.solve_cached(&geom, &budget(), &obj);
        assert!(ok.is_ok());
        let (_, hit) = cache.solve_cached(&geom, &budget(), &obj);
        assert!(hit);
        assert_eq!((cache.negatives(), cache.negative_hits()), (0, 0));
    }

    #[test]
    fn distinct_objective_weights_do_not_collide() {
        let cache = TileCache::new();
        let geom = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let (a, _) = cache.solve_cached(&geom, &budget(), &TilingObjective::memory_only());
        let (b, hit) = cache.solve_cached(&geom, &budget(), &TilingObjective::diana_digital());
        assert!(!hit, "different weights must miss");
        // Different objectives really do pick different tiles here.
        assert_ne!(a.unwrap().tile, b.unwrap().tile);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_cost_models_do_not_collide() {
        use crate::{CostModel, EngineModel};
        let cm = |version| CostModel {
            version,
            gamma: 4.0,
            dma_setup: 30,
            dma_bytes_per_cycle: 8,
            kernel_call_overhead: 800,
            tile_overhead: 300,
            engine: EngineModel::Digital {
                pe_rows: 16,
                pe_cols: 16,
                dw_macs_per_cycle_x100: 375,
                add_elems_per_cycle: 16,
                efficiency_pct: 40,
            },
        };
        let cache = TileCache::new();
        let geom = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        // Identical α and terms; only the calibration differs.
        let heuristic = TilingObjective::memory_only();
        let calibrated = TilingObjective::calibrated(cm(1));
        let recalibrated = TilingObjective::calibrated(cm(2));
        let (_, _) = cache.solve_cached(&geom, &budget(), &heuristic);
        let (_, hit_cal) = cache.solve_cached(&geom, &budget(), &calibrated);
        assert!(
            !hit_cal,
            "a calibrated objective must miss the heuristic entry"
        );
        let (_, hit_ver) = cache.solve_cached(&geom, &budget(), &recalibrated);
        assert!(!hit_ver, "a calibration version bump must miss");
        assert_eq!(cache.len(), 3, "three distinct identities, three entries");
        // And the calibrated key is stable: re-asking hits.
        let (_, hit) = cache.solve_cached(&geom, &budget(), &calibrated);
        assert!(hit);
    }

    #[test]
    fn clones_share_entries_across_threads() {
        let cache = TileCache::new();
        let geom = LayerGeometry::conv2d(128, 128, 16, 16, 3, 3, (1, 1), (1, 1, 1, 1));
        let obj = TilingObjective::diana_digital();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = cache.clone();
                let (g, o) = (geom.clone(), obj.clone());
                s.spawn(move || c.solve_cached(&g, &budget(), &o).0.unwrap());
            }
        });
        // Racing threads may each solve the fresh key once, but the table
        // converges to one entry and later lookups all hit.
        assert_eq!(cache.len(), 1);
        let (_, hit) = cache.solve_cached(&geom, &budget(), &obj);
        assert!(hit);
    }

    #[test]
    fn clear_empties_but_keeps_history() {
        let cache = TileCache::new();
        let geom = LayerGeometry::dense(640, 128);
        let (first, _) = cache.solve_cached(&geom, &budget(), &TilingObjective::memory_only());
        assert!(first.is_ok());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.solves(), 1);
        let (_, hit) = cache.solve_cached(&geom, &budget(), &TilingObjective::memory_only());
        assert!(!hit, "cleared entries are gone");
    }
}
