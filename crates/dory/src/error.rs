//! Tiling errors.

use crate::LayerGeometry;
use std::error::Error;
use std::fmt;

/// Errors from the tiling solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TilingError {
    /// Even the minimal 1×1×1×1 tile exceeds the memory budget — the layer
    /// cannot be executed on this engine at all.
    DoesNotFit {
        /// The offending layer.
        geom: Box<LayerGeometry>,
    },
    /// A heuristic parameter is structurally invalid — e.g. an Eq. 3/4
    /// alignment modulo of 0 or 1, whose `(modulo − 1)` normalization
    /// would divide by zero.
    InvalidHeuristic {
        /// Which parameter was rejected and why.
        reason: String,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::DoesNotFit { geom } => write!(
                f,
                "no tile of the {:?} layer (c={}, k={}, {}x{}) fits the memory budget",
                geom.kind, geom.c, geom.k, geom.iy, geom.ix
            ),
            TilingError::InvalidHeuristic { reason } => {
                write!(f, "invalid tiling heuristic: {reason}")
            }
        }
    }
}

impl Error for TilingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_geometry() {
        let e = TilingError::DoesNotFit {
            geom: Box::new(LayerGeometry::dense(640, 128)),
        };
        let s = e.to_string();
        assert!(s.contains("c=640"));
        assert!(s.contains("k=128"));
    }

    #[test]
    fn invalid_heuristic_display_carries_reason() {
        let e = TilingError::InvalidHeuristic {
            reason: "PeAlignC modulo must be >= 2, got 1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("invalid tiling heuristic"));
        assert!(s.contains("modulo"));
    }
}
