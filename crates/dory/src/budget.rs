//! L1 memory budgets and per-tile memory accounting (the paper's Eq. 2).

use crate::{LayerGeometry, LayerKind, TileConfig};
use htvm_ir::DType;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D in-memory-compute weight array (DIANA's analog macro
/// is 1152 rows × 512 columns of ternary SRAM cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayDims {
    /// Array rows; a tile maps `Cᵗ·Fy·Fx` weight rows.
    pub rows: usize,
    /// Array columns; a tile maps `Kᵗ` output channels.
    pub cols: usize,
}

/// The L1 capacity constraints a tile must satisfy (Eq. 2 of the paper,
/// split per DIANA's physical memories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// Shared input/output activation scratchpad in bytes (DIANA: 256 kB
    /// shared between both accelerators).
    pub act_bytes: usize,
    /// Dedicated weight memory in bytes, if the engine streams weights
    /// (DIANA digital: 64 kB). `None` when weights live in a compute array.
    pub weight_bytes: Option<usize>,
    /// In-memory-compute array geometry, if weights are spatially mapped
    /// (DIANA analog: 1152×512). Constrains `Cᵗ·Fy·Fx` and `Kᵗ` directly.
    pub array: Option<ArrayDims>,
}

impl MemoryBudget {
    /// A single unified L1 of `bytes` with no separate weight store —
    /// weights count against the same budget (the textbook DORY Eq. 2).
    #[must_use]
    pub fn unified(bytes: usize) -> Self {
        MemoryBudget {
            act_bytes: bytes,
            weight_bytes: None,
            array: None,
        }
    }
}

/// Per-tile L1 memory use, the `L1ʷ`, `L1ⁱⁿ`, `L1ᵒᵘᵗ` terms of Eq. 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMemory {
    /// Input activation bytes (doubled for element-wise add: two operands).
    pub input: usize,
    /// Output bytes; widened to 4-byte accumulators while a tile splits the
    /// reduction dimension (partial sums must stay resident).
    pub output: usize,
    /// Weight bytes at the weight precision (packed for ternary).
    pub weight: usize,
}

impl TileMemory {
    /// Total bytes across the three classes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.input + self.output + self.weight
    }
}

/// Computes the L1 bytes a tile occupies for a layer.
///
/// Input-side extents follow the halo formula via
/// [`TileConfig::in_dims`]. The output tile is held as 32-bit partial sums
/// whenever the tile splits the reduction dimension (`c_t < c` for
/// conv/dense), since requantization can only happen after the last channel
/// slice — exactly DORY's accumulator-residency rule.
///
/// # Panics
///
/// Panics if the tile is invalid for the geometry (checked by
/// [`TileConfig::validate`]).
#[must_use]
pub fn tile_memory(geom: &LayerGeometry, tile: &TileConfig) -> TileMemory {
    tile.validate(geom);
    let act = geom.act_dtype;
    let (iy_t, ix_t) = tile.in_dims(geom);
    let in_elems = tile.c_t * iy_t * ix_t;
    let input = match geom.kind {
        LayerKind::Add => 2 * act.storage_bytes(in_elems),
        _ => act.storage_bytes(in_elems),
    };
    let out_elems = tile.k_t * tile.oy_t * tile.ox_t;
    let splits_reduction = matches!(
        geom.kind,
        LayerKind::Conv2d | LayerKind::Dense | LayerKind::MatMul
    ) && tile.c_t < geom.c;
    let output = if splits_reduction {
        DType::I32.storage_bytes(out_elems)
    } else {
        act.storage_bytes(out_elems)
    };
    let weight_elems = match geom.kind {
        LayerKind::Conv2d => tile.k_t * tile.c_t * geom.fy * geom.fx,
        LayerKind::DepthwiseConv2d => tile.c_t * geom.fy * geom.fx,
        LayerKind::Dense => tile.k_t * tile.c_t,
        LayerKind::Add => 0,
        // The staged b-operand slab: an N×D rectangle per resident batch
        // column — the rectangular L1 partition conv tiles never exercise.
        LayerKind::MatMul => tile.k_t * tile.c_t * tile.ox_t,
    };
    let weight = geom.w_dtype.storage_bytes(weight_elems);
    TileMemory {
        input,
        output,
        weight,
    }
}

/// Checks the Eq. 2 constraint: does `tile` fit `budget`?
///
/// With a separate weight memory, activations and weights are checked
/// against their own capacities; with a unified budget the three terms sum.
/// An in-memory-compute array instead constrains the tile's weight
/// footprint geometrically (`Cᵗ·Fy·Fx ≤ rows`, `Kᵗ ≤ cols`).
#[must_use]
pub fn tile_fits(geom: &LayerGeometry, tile: &TileConfig, budget: &MemoryBudget) -> bool {
    let mem = tile_memory(geom, tile);
    if let Some(array) = budget.array {
        if geom.kind != LayerKind::Add {
            let rows_needed = match geom.kind {
                LayerKind::DepthwiseConv2d => geom.fy * geom.fx,
                _ => tile.c_t * geom.fy * geom.fx,
            };
            if rows_needed > array.rows || tile.k_t > array.cols {
                return false;
            }
        }
        mem.input + mem.output <= budget.act_bytes
    } else if let Some(wb) = budget.weight_bytes {
        mem.input + mem.output <= budget.act_bytes && mem.weight <= wb
    } else {
        mem.total() <= budget.act_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(c: usize, k: usize, oy: usize, ox: usize) -> TileConfig {
        TileConfig {
            c_t: c,
            k_t: k,
            oy_t: oy,
            ox_t: ox,
        }
    }

    #[test]
    fn full_tile_memory_matches_layer_sizes() {
        let g = LayerGeometry::conv2d(16, 32, 8, 8, 3, 3, (1, 1), (0, 0, 0, 0));
        let t = TileConfig::full(&g); // oy = ox = 6
        let m = tile_memory(&g, &t);
        assert_eq!(m.input, 16 * 64);
        assert_eq!(m.weight, 32 * 16 * 9);
        assert_eq!(m.output, 32 * 36); // no reduction split -> i8
        assert_eq!(m.total(), m.input + m.output + m.weight);
    }

    #[test]
    fn partial_channel_tiles_widen_output() {
        let g = LayerGeometry::conv2d(16, 32, 8, 8, 3, 3, (1, 1), (0, 0, 0, 0));
        let m = tile_memory(&g, &tile(8, 32, 6, 6));
        assert_eq!(m.output, 32 * 36 * 4); // i32 partial sums
    }

    #[test]
    fn halo_grows_input_tile() {
        let g = LayerGeometry::conv2d(4, 4, 16, 16, 3, 3, (1, 1), (1, 1, 1, 1));
        // Half the output rows need (8-1)*1+3 = 10 input rows, not 8.
        let m = tile_memory(&g, &tile(4, 4, 8, 16));
        assert_eq!(m.input, 4 * 10 * 16);
    }

    #[test]
    fn depthwise_never_splits_reduction() {
        let g = LayerGeometry::depthwise(16, 8, 8, 3, 3, (1, 1), (0, 0, 0, 0));
        let m = tile_memory(&g, &tile(8, 8, 6, 6));
        assert_eq!(m.output, 8 * 36); // stays i8
        assert_eq!(m.weight, 8 * 9);
    }

    #[test]
    fn add_counts_two_operands() {
        let g = LayerGeometry::add(8, 4, 4);
        let m = tile_memory(&g, &tile(8, 8, 4, 4));
        assert_eq!(m.input, 2 * 8 * 16);
        assert_eq!(m.weight, 0);
    }

    #[test]
    fn matmul_tiles_partition_rectangles() {
        // D=32, N=128, M=128, H=2.
        let g = LayerGeometry::matmul(32, 128, 128, 2, true);
        let full = TileConfig::full(&g);
        let m = tile_memory(&g, &full);
        assert_eq!(m.input, 32 * 128 * 2);
        assert_eq!(m.weight, 128 * 32 * 2, "whole staged b operand");
        assert_eq!(m.output, 128 * 128 * 2);
        // Halving sequence rows halves input and output but leaves the
        // staged slab alone; halving output columns shrinks the slab.
        let rows = tile_memory(&g, &tile(32, 128, 64, 2));
        assert_eq!(rows.input, 32 * 64 * 2);
        assert_eq!(rows.output, 128 * 64 * 2);
        assert_eq!(rows.weight, m.weight);
        let cols = tile_memory(&g, &tile(32, 64, 128, 2));
        assert_eq!(cols.weight, 64 * 32 * 2);
        // Splitting the reduction widens outputs to i32 partial sums.
        let red = tile_memory(&g, &tile(16, 128, 128, 2));
        assert_eq!(red.output, 128 * 128 * 2 * 4);
    }

    #[test]
    fn split_budget_checks_both_memories() {
        let g = LayerGeometry::conv2d(16, 32, 8, 8, 3, 3, (1, 1), (0, 0, 0, 0));
        let t = TileConfig::full(&g);
        let m = tile_memory(&g, &t);
        let fits = MemoryBudget {
            act_bytes: m.input + m.output,
            weight_bytes: Some(m.weight),
            array: None,
        };
        assert!(tile_fits(&g, &t, &fits));
        let tight_w = MemoryBudget {
            weight_bytes: Some(m.weight - 1),
            ..fits
        };
        assert!(!tile_fits(&g, &t, &tight_w));
        let tight_a = MemoryBudget {
            act_bytes: m.input + m.output - 1,
            ..fits
        };
        assert!(!tile_fits(&g, &t, &tight_a));
    }

    #[test]
    fn unified_budget_sums_all_terms() {
        let g = LayerGeometry::dense(64, 64);
        let t = TileConfig::full(&g);
        let m = tile_memory(&g, &t);
        assert!(tile_fits(&g, &t, &MemoryBudget::unified(m.total())));
        assert!(!tile_fits(&g, &t, &MemoryBudget::unified(m.total() - 1)));
    }

    #[test]
    fn imc_array_constrains_geometrically() {
        use htvm_ir::DType;
        let budget = MemoryBudget {
            act_bytes: 256 * 1024,
            weight_bytes: None,
            array: Some(ArrayDims {
                rows: 1152,
                cols: 512,
            }),
        };
        // 128*9 = 1152 rows exactly, 512 cols exactly: fits.
        let g = LayerGeometry::conv2d(128, 512, 8, 8, 3, 3, (1, 1), (1, 1, 1, 1))
            .with_weight_dtype(DType::Ternary);
        assert!(tile_fits(&g, &TileConfig::full(&g), &budget));
        // One more channel's worth of rows does not fit: must tile c.
        let g2 = LayerGeometry::conv2d(129, 512, 8, 8, 3, 3, (1, 1), (1, 1, 1, 1))
            .with_weight_dtype(DType::Ternary);
        assert!(!tile_fits(&g2, &TileConfig::full(&g2), &budget));
        let halved = TileConfig {
            c_t: 64,
            ..TileConfig::full(&g2)
        };
        assert!(tile_fits(&g2, &halved, &budget));
    }
}
