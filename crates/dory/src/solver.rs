//! The tiling solver: discrete maximization of Eq. 1 under Eq. 2.

use crate::{
    tile_fits, tile_memory, LayerGeometry, LayerKind, MemoryBudget, TileConfig, TileMemory,
    TilingError, TilingObjective,
};
use serde::{Deserialize, Serialize};

/// A solved tiling for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileSolution {
    /// The chosen tile sizes.
    pub tile: TileConfig,
    /// L1 bytes the chosen tile occupies.
    pub mem: TileMemory,
    /// Number of accelerator invocations the tile loop will issue.
    pub n_tiles: usize,
    /// `true` if the whole layer fits untiled (the grey region of Fig. 4).
    pub fits_untiled: bool,
    /// The Eq. 1 objective value of the chosen tile.
    pub score: f64,
}

/// Finds the tile maximizing `objective` subject to `budget` (Eq. 1–2).
///
/// The search enumerates candidate sizes for the channel dimensions and the
/// output width, and closes over the output height analytically: for fixed
/// `(Cᵗ, Kᵗ, o_xᵗ)` every objective term is non-decreasing in `o_yᵗ`
/// (memory use, `H_DMA`, and the PE-alignment terms are unaffected, and the
/// calibrated predicted-cycle term is non-increasing in tile height by
/// construction — see [`crate::CostModel`]), so the maximal feasible
/// `o_yᵗ` is optimal and found by bisection.
///
/// Ties are broken deterministically but *arbitrarily* (by a hash of the
/// tile sizes), modeling the unspecified solution order of DORY's
/// constraint-programming solver. This is what produces the paper's Fig. 4
/// observation that heuristic-free tiling yields "either good tiles or
/// very bad tiles": a memory-maximal tile that splits the input width ties
/// with one that splits the height, and without the Eq. 5 term nothing
/// steers the choice toward the DMA-friendly one.
///
/// # Errors
///
/// Returns [`TilingError::DoesNotFit`] when even the minimal tile violates
/// the budget (the layer cannot run on this engine).
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn solve(
    geom: &LayerGeometry,
    budget: &MemoryBudget,
    objective: &TilingObjective,
) -> Result<TileSolution, TilingError> {
    let full = TileConfig::full(geom);
    if tile_fits(geom, &full, budget) {
        // Grey region of Fig. 4: no tiling required.
        return Ok(make_solution(geom, budget, objective, full, true));
    }

    let lockstep = matches!(geom.kind, LayerKind::DepthwiseConv2d | LayerKind::Add);
    let c_candidates = candidates(geom.c);
    let k_candidates = if lockstep {
        vec![0]
    } else {
        candidates(geom.k)
    };
    let ox_candidates = candidates(geom.ox());

    let mut best: Option<(f64, TileConfig)> = None;
    for &c_t in &c_candidates {
        for &k_raw in &k_candidates {
            let k_t = if lockstep { c_t } else { k_raw };
            for &ox_t in &ox_candidates {
                let Some(oy_t) = max_feasible_oy(geom, budget, c_t, k_t, ox_t) else {
                    continue;
                };
                let tile = TileConfig {
                    c_t,
                    k_t,
                    oy_t,
                    ox_t,
                };
                let score = objective.score(geom, &tile, budget);
                if is_better(score, &tile, &best) {
                    best = Some((score, tile));
                }
            }
        }
    }

    match best {
        Some((_, tile)) => Ok(make_solution(geom, budget, objective, tile, false)),
        None => Err(TilingError::DoesNotFit {
            geom: Box::new(geom.clone()),
        }),
    }
}

fn make_solution(
    geom: &LayerGeometry,
    budget: &MemoryBudget,
    objective: &TilingObjective,
    tile: TileConfig,
    fits_untiled: bool,
) -> TileSolution {
    TileSolution {
        mem: tile_memory(geom, &tile),
        n_tiles: tile.num_tiles(geom),
        score: objective.score(geom, &tile, budget),
        tile,
        fits_untiled,
    }
}

fn is_better(score: f64, tile: &TileConfig, best: &Option<(f64, TileConfig)>) -> bool {
    let Some((bs, bt)) = best else { return true };
    (score, tile_hash(tile)) > (*bs, tile_hash(bt))
}

/// Deterministic pseudo-arbitrary order among equal-score tiles (a stand-in
/// for a CP solver's unspecified enumeration order).
fn tile_hash(t: &TileConfig) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for v in [t.c_t, t.k_t, t.oy_t, t.ox_t] {
        h ^= v as u64;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    h
}

/// Largest feasible `o_yᵗ` for fixed other dimensions, via bisection over
/// the monotone feasibility predicate; `None` if even `o_yᵗ = 1` fails.
fn max_feasible_oy(
    geom: &LayerGeometry,
    budget: &MemoryBudget,
    c_t: usize,
    k_t: usize,
    ox_t: usize,
) -> Option<usize> {
    let fits = |oy_t: usize| {
        tile_fits(
            geom,
            &TileConfig {
                c_t,
                k_t,
                oy_t,
                ox_t,
            },
            budget,
        )
    };
    if !fits(1) {
        return None;
    }
    let (mut lo, mut hi) = (1usize, geom.oy());
    if fits(hi) {
        return Some(hi);
    }
    // Invariant: fits(lo), !fits(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Candidate tile sizes for a dimension: exhaustive for small dimensions,
/// pruned to small sizes, 8-aligned sizes, divisors and the full extent for
/// large ones (keeps the search ~10⁶ points for MobileNet-scale layers).
fn candidates(dim: usize) -> Vec<usize> {
    if dim <= 96 {
        return (1..=dim).collect();
    }
    let mut v: Vec<usize> = (1..=32).collect();
    v.extend((40..=dim).step_by(8));
    // Divisors in O(√dim): every divisor d <= √dim pairs with dim / d.
    let mut d = 1;
    while d * d <= dim {
        if dim.is_multiple_of(d) {
            v.push(d);
            v.push(dim / d);
        }
        d += 1;
    }
    v.push(dim);
    v.sort_unstable();
    v.dedup();
    v.retain(|&d| d <= dim);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(act_kb: usize, w_kb: usize) -> MemoryBudget {
        MemoryBudget {
            act_bytes: act_kb * 1024,
            weight_bytes: Some(w_kb * 1024),
            array: None,
        }
    }

    #[test]
    fn untiled_when_it_fits() {
        let g = LayerGeometry::conv2d(16, 16, 8, 8, 3, 3, (1, 1), (1, 1, 1, 1));
        let s = solve(&g, &budget(256, 64), &TilingObjective::diana_digital()).unwrap();
        assert!(s.fits_untiled);
        assert_eq!(s.n_tiles, 1);
        assert!(s.tile.is_full(&g));
    }

    #[test]
    fn solution_always_fits() {
        let g = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        for kb in [4usize, 8, 16, 32, 64] {
            let s = solve(&g, &budget(kb, 16), &TilingObjective::diana_digital()).unwrap();
            assert!(
                tile_fits(&g, &s.tile, &budget(kb, 16)),
                "solution must satisfy eq. 2 at {kb} kB"
            );
        }
    }

    #[test]
    fn heuristics_align_channels() {
        let g = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let s = solve(&g, &budget(16, 16), &TilingObjective::diana_digital()).unwrap();
        assert!(
            s.tile.c_t.is_multiple_of(16) || s.tile.c_t == 64,
            "eq. 3 should align c_t, got {}",
            s.tile.c_t
        );
    }

    #[test]
    fn memory_only_scores_lower_or_equal_on_heuristics() {
        let g = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let b = budget(16, 16);
        let obj = TilingObjective::diana_digital();
        let with_h = solve(&g, &b, &obj).unwrap();
        let without = solve(&g, &b, &TilingObjective::memory_only()).unwrap();
        // Scored under the heuristic objective, the heuristic solution
        // must dominate.
        assert!(obj.score(&g, &with_h.tile, &b) >= obj.score(&g, &without.tile, &b));
    }

    #[test]
    fn dense_layer_splits_weights() {
        // ToyAdmos first layer: 640 -> 128, 80 kB of weights vs 64 kB store.
        let g = LayerGeometry::dense(640, 128);
        let s = solve(&g, &budget(256, 64), &TilingObjective::diana_digital()).unwrap();
        assert!(!s.fits_untiled);
        assert!(s.n_tiles > 1);
        assert!(s.mem.weight <= 64 * 1024);
    }

    #[test]
    fn matmul_splits_sequence_rows() {
        // tiny_transformer QK^T: D=32, N=256, M=256, H=2. The 128 kB i8
        // score matrix plus its input exceeds a 128 kB activation budget,
        // so the solver must carve rectangular sequence×head partitions.
        let g = LayerGeometry::matmul(32, 256, 256, 2, true);
        let b = budget(128, 64);
        let s = solve(&g, &b, &TilingObjective::diana_digital()).unwrap();
        assert!(!s.fits_untiled);
        assert!(s.n_tiles > 1);
        assert!(tile_fits(&g, &s.tile, &b));
        assert!(
            s.tile.oy_t < 256 || s.tile.k_t < 256,
            "a rectangular split of the 256×256 output is required, got {:?}",
            s.tile
        );
        // The staged b slab must respect the weight store.
        assert!(s.mem.weight <= 64 * 1024);
    }

    #[test]
    fn matmul_reduction_split_survives_tiny_budgets() {
        // Force even the reduction to split: partial sums widen to i32 and
        // the solution must still satisfy Eq. 2.
        let g = LayerGeometry::matmul(256, 64, 256, 2, false);
        for kb in [16usize, 32, 64] {
            let b = budget(kb, 8);
            let s = solve(&g, &b, &TilingObjective::diana_digital()).unwrap();
            assert!(tile_fits(&g, &s.tile, &b), "must fit at {kb} kB");
        }
    }

    #[test]
    fn depthwise_locksteps_channel_tiles() {
        let g = LayerGeometry::depthwise(64, 50, 10, 3, 3, (1, 1), (1, 1, 1, 1));
        let s = solve(&g, &budget(2, 64), &TilingObjective::diana_digital()).unwrap();
        assert_eq!(s.tile.c_t, s.tile.k_t);
    }

    #[test]
    fn analog_array_forces_channel_split() {
        use htvm_ir::DType;
        let g = LayerGeometry::conv2d(256, 256, 16, 16, 3, 3, (1, 1), (1, 1, 1, 1))
            .with_weight_dtype(DType::Ternary);
        let b = MemoryBudget {
            act_bytes: 256 * 1024,
            weight_bytes: None,
            array: Some(crate::ArrayDims {
                rows: 1152,
                cols: 512,
            }),
        };
        let s = solve(&g, &b, &TilingObjective::diana_analog()).unwrap();
        // 256*9 = 2304 rows > 1152: c must be split to <= 128.
        assert!(s.tile.c_t * 9 <= 1152);
        assert!(
            s.tile.c_t == 128,
            "analog fill-rows should pick 128, got {}",
            s.tile.c_t
        );
    }

    #[test]
    fn impossible_budget_errors() {
        let g = LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1));
        let b = MemoryBudget {
            act_bytes: 8,
            weight_bytes: Some(8),
            array: None,
        };
        assert!(matches!(
            solve(&g, &b, &TilingObjective::diana_digital()),
            Err(TilingError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn candidates_cover_small_dims_exhaustively() {
        assert_eq!(candidates(5), vec![1, 2, 3, 4, 5]);
        let c = candidates(256);
        assert!(c.contains(&256));
        assert!(c.contains(&128));
        assert!(c.contains(&16));
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn candidates_match_naive_divisor_scan_on_large_dims() {
        // The O(√dim) divisor enumeration must produce exactly the set the
        // old O(dim) scan did, including primes, perfect squares and
        // highly-composite sizes.
        for dim in [97usize, 101, 128, 144, 169, 224, 360, 1009, 1024, 2520] {
            let mut naive: Vec<usize> = (1..=32).collect();
            naive.extend((40..=dim).step_by(8));
            naive.extend((1..=dim).filter(|d| dim.is_multiple_of(*d)));
            naive.push(dim);
            naive.sort_unstable();
            naive.dedup();
            naive.retain(|&d| d <= dim);
            assert_eq!(candidates(dim), naive, "candidate mismatch for dim {dim}");
        }
    }

    #[test]
    fn solver_is_deterministic() {
        let g = LayerGeometry::conv2d(32, 48, 24, 24, 3, 3, (1, 1), (1, 1, 1, 1));
        let b = budget(12, 24);
        let obj = TilingObjective::diana_digital();
        let a = solve(&g, &b, &obj).unwrap();
        let c = solve(&g, &b, &obj).unwrap();
        assert_eq!(a, c);
    }
}
