//! The tiling objective: Eq. 1 of the paper, with the DIANA heuristics of
//! Eq. 3–5 as pluggable terms.

use crate::{tile_memory, CostModel, LayerGeometry, MemoryBudget, TileConfig, TilingError};
use serde::{Deserialize, Serialize};

/// An accelerator-aware tiling heuristic `Hᵢ` (paper §III-B/C).
///
/// Each heuristic scores a candidate tile in `[0, 1]`; the solver maximizes
/// `α·(memory utilization) + Σᵢ βᵢ·Hᵢ` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Heuristic {
    /// Eq. 3: `H = (Cᵗ − 1) mod m`, maximal when the input-channel tile is
    /// a multiple of the PE-array row count `m` (16 on DIANA's digital
    /// accelerator).
    PeAlignC {
        /// PE-array row count.
        modulo: usize,
    },
    /// Eq. 4: `H = (i_xᵗ − 1) mod m`, maximal when the input-width tile is
    /// a multiple of the PE-array column count.
    PeAlignIx {
        /// PE-array column count.
        modulo: usize,
    },
    /// Eq. 5: `H = i_yᵗ` — maximize the input-height tile to coalesce DMA
    /// transfers. In the C–y–x layout rows are only contiguous across `y`
    /// when the tile spans the full width, so the score is gated on
    /// `i_xᵗ = i_x`: growing `i_yᵗ` while splitting `x` would *increase*
    /// the transfer count, the opposite of what Eq. 5 is for.
    DmaMaxIy,
    /// Analog IMC: maximize the fraction of array rows occupied by the
    /// tile's `Cᵗ·Fy·Fx` weight rows ("spatially unroll C as much as
    /// possible").
    ImcFillRows {
        /// Total array rows (1152 on DIANA).
        rows: usize,
    },
    /// Analog IMC: maximize the fraction of array columns occupied by `Kᵗ`
    /// ("spatially unroll K as much as possible").
    ImcFillCols {
        /// Total array columns (512 on DIANA).
        cols: usize,
    },
}

impl Heuristic {
    /// Validated [`Heuristic::PeAlignC`]: the Eq. 3 normalization divides
    /// by `modulo − 1`, so `modulo <= 1` is rejected here rather than
    /// producing NaN (or a division panic) deep inside the solver.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::InvalidHeuristic`] when `modulo <= 1`.
    pub fn pe_align_c(modulo: usize) -> Result<Self, TilingError> {
        if modulo <= 1 {
            return Err(TilingError::InvalidHeuristic {
                reason: format!("PeAlignC modulo must be >= 2, got {modulo}"),
            });
        }
        Ok(Heuristic::PeAlignC { modulo })
    }

    /// Validated [`Heuristic::PeAlignIx`], rejecting `modulo <= 1` like
    /// [`Heuristic::pe_align_c`].
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::InvalidHeuristic`] when `modulo <= 1`.
    pub fn pe_align_ix(modulo: usize) -> Result<Self, TilingError> {
        if modulo <= 1 {
            return Err(TilingError::InvalidHeuristic {
                reason: format!("PeAlignIx modulo must be >= 2, got {modulo}"),
            });
        }
        Ok(Heuristic::PeAlignIx { modulo })
    }

    /// Scores a candidate tile in `[0, 1]` (1 is best).
    #[must_use]
    pub fn score(&self, geom: &LayerGeometry, tile: &TileConfig) -> f64 {
        let (_iy_t, ix_t) = tile.in_dims(geom);
        match *self {
            Heuristic::PeAlignC { modulo } => {
                // (c_t - 1) mod m is maximal (m - 1) when c_t ≡ 0 (mod m);
                // also maximal when c_t equals the whole (smaller) layer dim.
                // Degenerate moduli (0, 1) come only from hand-built
                // literals — the validated constructors reject them — and
                // score 1: every size is trivially aligned to a 1-lane
                // array, and `% 0` / `/ 0` must not reach the solver.
                if modulo <= 1 || tile.c_t == geom.c {
                    1.0
                } else {
                    ((tile.c_t + modulo - 1) % modulo) as f64 / (modulo - 1) as f64
                }
            }
            Heuristic::PeAlignIx { modulo } => {
                if modulo <= 1 || ix_t == geom.ix {
                    1.0
                } else {
                    ((ix_t + modulo - 1) % modulo) as f64 / (modulo - 1) as f64
                }
            }
            Heuristic::DmaMaxIy => {
                // Gate on full *output* width: an ox split always forces
                // non-contiguous input fetches, even when the halo formula
                // caps i_xᵗ at the input width. Score the *output* rows
                // rather than the capped input rows — near the top of the
                // range the cap would otherwise make an oy-split tile look
                // as tall as the full layer while doubling the tile count.
                if tile.ox_t == geom.ox() {
                    tile.oy_t as f64 / geom.oy() as f64
                } else {
                    0.0
                }
            }
            Heuristic::ImcFillRows { rows } => {
                let used = (tile.c_t * geom.fy * geom.fx).min(rows);
                used as f64 / rows as f64
            }
            Heuristic::ImcFillCols { cols } => (tile.k_t.min(cols)) as f64 / cols as f64,
        }
    }
}

/// The full Eq. 1 objective: a memory-utilization weight `α` plus weighted
/// heuristic terms `βᵢ·Hᵢ`, optionally augmented with a calibrated
/// predicted-cycle term (see [`CostModel`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilingObjective {
    /// Weight of the memory-utilization term.
    pub alpha: f64,
    /// Heuristic terms and their weights.
    pub terms: Vec<(Heuristic, f64)>,
    /// Calibrated cycle model scoring tiles by predicted cycles
    /// (`γ · predicted(full) / predicted(tile)`). `None` — the default,
    /// and what every pre-calibration serialized objective deserializes
    /// to — falls back to the Eq. 3–5 heuristics alone. Skipped when
    /// absent so the canonical JSON encoding (and with it every persisted
    /// artifact key) is unchanged for uncalibrated objectives.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cost_model: Option<CostModel>,
}

impl TilingObjective {
    /// Hardware-agnostic baseline: maximize memory utilization only
    /// (the round markers of Fig. 4).
    #[must_use]
    pub fn memory_only() -> Self {
        TilingObjective {
            alpha: 1.0,
            terms: Vec::new(),
            cost_model: None,
        }
    }

    /// DIANA digital-accelerator heuristics Eq. 3 and Eq. 4 only
    /// (the square markers of Fig. 4).
    #[must_use]
    pub fn diana_digital_pe_only() -> Self {
        TilingObjective {
            alpha: 1.0,
            terms: vec![
                (Heuristic::PeAlignC { modulo: 16 }, 2.0),
                (Heuristic::PeAlignIx { modulo: 16 }, 2.0),
            ],
            cost_model: None,
        }
    }

    /// The full DIANA digital objective: Eq. 3, 4 and 5 (the diamond
    /// markers of Fig. 4 and the configuration HTVM deploys with).
    #[must_use]
    pub fn diana_digital() -> Self {
        TilingObjective {
            alpha: 1.0,
            terms: vec![
                (Heuristic::PeAlignC { modulo: 16 }, 2.0),
                (Heuristic::PeAlignIx { modulo: 16 }, 2.0),
                // Sub-unit weight: Eq. 5 should steer among comparable
                // tiles, not trade away memory utilization (and with it
                // tile count) for height.
                (Heuristic::DmaMaxIy, 0.2),
            ],
            cost_model: None,
        }
    }

    /// The DIANA analog objective: fill the 1152×512 IMC macro ("spatially
    /// unroll C and K as much as possible", paper §III-C).
    #[must_use]
    pub fn diana_analog() -> Self {
        TilingObjective {
            alpha: 1.0,
            terms: vec![
                (Heuristic::ImcFillRows { rows: 1152 }, 2.0),
                (Heuristic::ImcFillCols { cols: 512 }, 2.0),
            ],
            cost_model: None,
        }
    }

    /// A measurement-calibrated objective: memory utilization plus the
    /// model's predicted-cycle term, with no Eq. 3–5 heuristics — the
    /// alignment and transfer-count effects they proxy are captured
    /// directly by the predictor. This is what the bench harness builds
    /// from a loaded `CALIBRATION.json`.
    #[must_use]
    pub fn calibrated(cost_model: CostModel) -> Self {
        TilingObjective {
            alpha: 1.0,
            terms: Vec::new(),
            cost_model: Some(cost_model),
        }
    }

    /// Attaches (or replaces) a calibrated cost model, builder style.
    #[must_use]
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = Some(cost_model);
        self
    }

    /// Evaluates Eq. 1 for a candidate tile. Higher is better.
    ///
    /// The memory term is the mean occupied fraction of the budget's
    /// activation (and, if present, weight) capacities.
    #[must_use]
    pub fn score(&self, geom: &LayerGeometry, tile: &TileConfig, budget: &MemoryBudget) -> f64 {
        let mem = tile_memory(geom, tile);
        // Eq. 1's memory term is a single sum L1ʷ + L1ᵒᵘᵗ + L1ⁱⁿ; with
        // DIANA's split memories we normalize by the combined capacity, so
        // leaving the weight store idle costs utilization.
        let capacity = budget.act_bytes + budget.weight_bytes.unwrap_or(0);
        let mem_term = (mem.total() as f64 / capacity as f64).min(1.0);
        let h: f64 = self
            .terms
            .iter()
            .map(|(heur, beta)| beta * heur.score(geom, tile))
            .sum();
        let cost = self
            .cost_model
            .as_ref()
            .map_or(0.0, |cm| cm.gamma * cm.score_term(geom, tile));
        self.alpha * mem_term + h + cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> LayerGeometry {
        LayerGeometry::conv2d(64, 64, 32, 32, 3, 3, (1, 1), (1, 1, 1, 1))
    }

    fn tile(c: usize, k: usize, oy: usize, ox: usize) -> TileConfig {
        TileConfig {
            c_t: c,
            k_t: k,
            oy_t: oy,
            ox_t: ox,
        }
    }

    #[test]
    fn pe_align_c_peaks_at_multiples_of_16() {
        let h = Heuristic::PeAlignC { modulo: 16 };
        let g = geom();
        assert_eq!(h.score(&g, &tile(16, 64, 32, 32)), 1.0);
        assert_eq!(h.score(&g, &tile(32, 64, 32, 32)), 1.0);
        assert!(h.score(&g, &tile(17, 64, 32, 32)) < 0.1);
        // Whole-dimension tiles always score 1 (nothing to align).
        assert_eq!(h.score(&g, &tile(64, 64, 32, 32)), 1.0);
    }

    #[test]
    fn pe_align_ix_uses_derived_input_width() {
        let h = Heuristic::PeAlignIx { modulo: 16 };
        let g = geom();
        // ox_t = 14 -> ix_t = 16: aligned.
        assert_eq!(h.score(&g, &tile(64, 64, 32, 14)), 1.0);
        // ox_t = 15 -> ix_t = 17: misaligned.
        assert!(h.score(&g, &tile(64, 64, 32, 15)) < 0.1);
    }

    #[test]
    fn dma_heuristic_prefers_tall_tiles() {
        let h = Heuristic::DmaMaxIy;
        let g = geom();
        assert!(h.score(&g, &tile(64, 64, 32, 32)) > h.score(&g, &tile(64, 64, 8, 32)));
    }

    #[test]
    fn imc_heuristics_reward_array_fill() {
        let rows = Heuristic::ImcFillRows { rows: 1152 };
        let cols = Heuristic::ImcFillCols { cols: 512 };
        let g = geom(); // c*fy*fx = 64*9 = 576 rows
        let full = tile(64, 64, 32, 32);
        assert!((rows.score(&g, &full) - 0.5).abs() < 1e-9);
        assert!((cols.score(&g, &full) - 0.125).abs() < 1e-9);
        assert!(rows.score(&g, &tile(32, 64, 32, 32)) < rows.score(&g, &full));
    }

    #[test]
    fn degenerate_moduli_are_rejected_at_construction() {
        for modulo in [0, 1] {
            assert!(matches!(
                Heuristic::pe_align_c(modulo),
                Err(TilingError::InvalidHeuristic { .. })
            ));
            assert!(matches!(
                Heuristic::pe_align_ix(modulo),
                Err(TilingError::InvalidHeuristic { .. })
            ));
        }
        assert_eq!(
            Heuristic::pe_align_c(16).unwrap(),
            Heuristic::PeAlignC { modulo: 16 }
        );
        assert_eq!(
            Heuristic::pe_align_ix(2).unwrap(),
            Heuristic::PeAlignIx { modulo: 2 }
        );
    }

    #[test]
    fn degenerate_modulus_literals_score_finite() {
        // Hand-built literals bypass the validated constructors; the score
        // must neither panic (`% 0`) nor go NaN (`/ 0`) — a 1-lane array
        // is always perfectly aligned.
        let g = geom();
        for modulo in [0, 1] {
            for h in [
                Heuristic::PeAlignC { modulo },
                Heuristic::PeAlignIx { modulo },
            ] {
                let s = h.score(&g, &tile(17, 64, 32, 15));
                assert_eq!(s, 1.0, "{h:?} must score 1.0, got {s}");
            }
        }
    }

    #[test]
    fn objective_combines_terms() {
        let g = geom();
        let budget = MemoryBudget::unified(1 << 20);
        let obj = TilingObjective::diana_digital();
        let aligned = tile(16, 64, 32, 14);
        let misaligned = tile(17, 64, 32, 15);
        assert!(obj.score(&g, &aligned, &budget) > obj.score(&g, &misaligned, &budget));
        // The memory-only baseline prefers the (bigger) misaligned tile.
        let base = TilingObjective::memory_only();
        assert!(base.score(&g, &misaligned, &budget) > base.score(&g, &aligned, &budget));
    }
}
