//! A minimal, offline subset of `rayon`.
//!
//! Implements the one shape this workspace uses — `slice.par_iter()
//! .map(f).collect()` — on top of `std::thread::scope`, preserving input
//! order (results come back indexed by chunk, so a parallel map is
//! byte-for-byte identical to the sequential one). Collecting into
//! `Result<Vec<T>, E>` is supported for fallible maps.

use std::num::NonZeroUsize;

/// The traits user code imports.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelMap};
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` (run on worker threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// Sealed-ish marker so `prelude::*` can name the collect entry point.
pub trait ParallelMap {
    /// Result element type.
    type Output;

    /// Runs the map across threads and gathers results in input order.
    fn collect<C: FromParallelIterator<Self::Output>>(self) -> C;
}

impl<'a, T, R, F> ParallelMap for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Output = R;

    fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(run_ordered(self.items, &self.f))
    }
}

fn run_ordered<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(f).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Collections buildable from an ordered parallel map.
pub trait FromParallelIterator<T>: Sized {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Short-circuit-style collection for fallible maps: the first `Err` in
/// input order wins, mirroring rayon's `Result` collection semantics.
impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_collection_returns_first_error() {
        let items: Vec<usize> = (0..100).collect();
        let out: Result<Vec<usize>, String> = items
            .par_iter()
            .map(|&x| {
                if x == 40 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out.unwrap_err(), "bad 40");
    }
}
