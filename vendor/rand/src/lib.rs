//! A minimal, offline, API-compatible subset of `rand` 0.8.
//!
//! Provides the slice this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer ranges.
//! The generator is a SplitMix64 — deterministic and fast. The exact
//! stream differs from upstream `rand`; the workspace only relies on
//! determinism, not on a particular stream (all golden metrics are
//! data-independent).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG seeded from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a `bool` with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the standard conversion.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, width)` by widening to `u128`; the modulo bias
/// is negligible for the widths this workspace uses.
fn below<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    u128::from(rng.next_u64()) % width
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, width) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The concrete RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG (SplitMix64 in this stub).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let (lo, hi) = (-128i32, 127);
            assert_eq!(a.gen_range(lo..=hi), b.gen_range(lo..=hi));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }
}
