//! A minimal, offline, API-compatible subset of `serde_json`.
//!
//! Backed by the vendored serde stub's [`Value`] tree. Provides
//! `to_string`, `to_string_pretty`, `from_str`, the [`json!`] macro and
//! `serde_json::Value`/`serde_json::Error` — the surface this workspace
//! uses. Output is deterministic: object fields keep insertion order.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Value {
    value.to_content()
}

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Never fails for the stub's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes to an indented JSON string.
///
/// # Errors
///
/// Never fails for the stub's data model.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), &mut out, 0);
    Ok(out)
}

/// Parses a JSON string and deserializes it into `T`.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&v)?)
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` keeps a trailing `.0` for integral floats, so the value
        // re-parses as a float.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, e)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number chars");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The `json!` macro
// ---------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax, with Rust expressions allowed
/// in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::json_object_internal!([] $($tt)+) };
    ([ $($tt:tt)+ ]) => { $crate::json_array_internal!([] $($tt)+) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: accumulates object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ([$($done:expr,)*]) => {
        $crate::Value::Object(vec![$($done),*])
    };
    ([$($done:expr,)*] $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object_internal!(
            [$($done,)* (::std::string::String::from($key), $crate::json!({ $($inner)* })),]
            $($($rest)*)?
        )
    };
    ([$($done:expr,)*] $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object_internal!(
            [$($done,)* (::std::string::String::from($key), $crate::json!([ $($inner)* ])),]
            $($($rest)*)?
        )
    };
    ([$($done:expr,)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object_internal!(
            [$($done,)* (::std::string::String::from($key), $crate::Value::Null),]
            $($($rest)*)?
        )
    };
    ([$($done:expr,)*] $key:literal : $val:expr , $($rest:tt)+) => {
        $crate::json_object_internal!(
            [$($done,)* (::std::string::String::from($key), $crate::to_value(&$val)),]
            $($rest)+
        )
    };
    ([$($done:expr,)*] $key:literal : $val:expr $(,)?) => {
        $crate::json_object_internal!(
            [$($done,)* (::std::string::String::from($key), $crate::to_value(&$val)),]
        )
    };
}

/// Implementation detail of [`json!`]: accumulates array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ([$($done:expr,)*]) => {
        $crate::Value::Array(vec![$($done),*])
    };
    ([$($done:expr,)*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!(
            [$($done,)* $crate::json!({ $($inner)* }),]
            $($($rest)*)?
        )
    };
    ([$($done:expr,)*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!(
            [$($done,)* $crate::json!([ $($inner)* ]),]
            $($($rest)*)?
        )
    };
    ([$($done:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!(
            [$($done,)* $crate::Value::Null,]
            $($($rest)*)?
        )
    };
    ([$($done:expr,)*] $val:expr , $($rest:tt)+) => {
        $crate::json_array_internal!(
            [$($done,)* $crate::to_value(&$val),]
            $($rest)+
        )
    };
    ([$($done:expr,)*] $val:expr $(,)?) => {
        $crate::json_array_internal!(
            [$($done,)* $crate::to_value(&$val),]
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "x", null, true],
            "c": { "d": -3 },
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][1], 2.5);
        assert_eq!(v["c"]["d"], -3);
        assert_eq!(v["b"][2], "x");
    }

    #[test]
    fn compact_output_has_no_spaces() {
        let s = to_string(&json!({"dims": [3, 2, 3]})).unwrap();
        assert_eq!(s, "{\"dims\":[3,2,3]}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = json!({ "x": [1, 2], "y": {} });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"x\""));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
