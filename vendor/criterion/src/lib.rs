//! A minimal, offline, API-compatible subset of `criterion`.
//!
//! Benchmarks register and run exactly like upstream (`criterion_group!` /
//! `criterion_main!`, groups, `Bencher::iter`), but measurement is a
//! simple warmup + timed-batch loop that prints mean wall time per
//! iteration. No statistics, plots or baselines — enough to compare
//! implementations on one machine, which is all this workspace's benches
//! do.

use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported from `std::hint`.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const TARGET_TIME: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000_000;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (`cargo bench -- <filter>`); flags
    /// are accepted and ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 0,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        self.run_one(&name, f);
        self
    }

    fn run_one(&self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            measured: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            let per_iter = bencher.measured.as_nanos() / u128::from(bencher.iters);
            println!(
                "bench: {name:<50} {per_iter:>12} ns/iter ({} iters)",
                bencher.iters
            );
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    measured: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly — a short warmup, then timed iterations until
    /// the time budget is spent — and records mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS {
            black_box(f());
            iters += 1;
            if start.elapsed() >= TARGET_TIME {
                break;
            }
        }
        self.measured = start.elapsed();
        self.iters = iters;
    }
}

/// Declares a function running a list of benchmark functions, like
/// upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
