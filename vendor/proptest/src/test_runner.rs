//! Test-case execution support: config, RNG, seeding and the error type
//! the `prop_assert*` macros return.

use std::fmt;

/// How many cases each property runs, mirroring upstream's config struct.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carried as `Err` out of the case body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError { msg }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)` (`n > 0`); modulo bias is acceptable for
    /// test-input generation.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[0, n)` as u128, for full-width integer ranges.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }
}

/// Derives the per-case seed from the fully-qualified test name and case
/// index, so every test gets an independent but reproducible stream.
#[must_use]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, then mix in the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
