//! `any::<T>()` for the few types the workspace asks for.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty => $name:ident),*) => {$(
        /// Full-range integer strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct $name;

        impl Strategy for $name {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}
arbitrary_int!(
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize
);
