//! Strategies: composable deterministic samplers for test inputs.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `sample`
/// draws a value directly.
pub trait Strategy {
    /// Type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(width) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
