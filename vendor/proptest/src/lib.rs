//! A minimal, offline, API-compatible subset of `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with a `proptest_config` header, strategies over
//! integer ranges and tuples, `prop_map` / `prop_flat_map` / `boxed`,
//! `Just`, `prop_oneof!`, `prop::collection::vec`, `any::<bool>()` and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design of the stub:
//! - no shrinking: a failing case reports its inputs and panics;
//! - deterministic seeding derived from the test's module path, name and
//!   case index (no `.proptest-regressions` replay — those files are kept
//!   in-tree for upstream compatibility but the seeds they record are
//!   exercised by explicit unit tests instead).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `proptest::prop` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(
                    $crate::test_runner::case_seed(__test_name, __case),
                );
                let __vals = (
                    $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )*
                );
                let __desc = format!("{:?}", __vals);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ( $($pat,)* ) = __vals;
                        let __r: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        __r
                    }),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__e)) => {
                        panic!(
                            "{} failed at case {}/{}: {}\n  inputs: {}",
                            __test_name, __case, __config.cases, __e, __desc
                        );
                    }
                    ::std::result::Result::Err(__payload) => {
                        eprintln!(
                            "{} panicked at case {}/{}\n  inputs: {}",
                            __test_name, __case, __config.cases, __desc
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Fails the current property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: {:?} != {:?}",
            __lhs,
            __rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__lhs == *__rhs, $($fmt)+);
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs != *__rhs,
            "assertion failed: {:?} == {:?}",
            __lhs,
            __rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__lhs != *__rhs, $($fmt)+);
    }};
}

/// Samples uniformly from one of several strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
