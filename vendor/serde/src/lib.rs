//! A minimal, offline, API-compatible subset of `serde`.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the handful of external crates the project depends on are
//! vendored as small stubs under `vendor/`. This crate provides the slice
//! of serde the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` on concrete (non-generic) types, plus enough of a data
//! model for `serde_json` to serialize to/parse from JSON strings.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! concrete [`Value`] tree (re-exported by `serde_json` as
//! `serde_json::Value`). Object fields keep insertion order, so output is
//! deterministic — a property the workspace's determinism tests rely on.

/// Derive macros, re-exported like `serde` with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree: the data model both serialization directions
/// pass through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    Int(i64),
    /// Unsigned integer (all non-negative integers parse as this).
    UInt(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; `Vec`-backed to preserve insertion order deterministically.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Looks up an object entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Numeric view used for mixed-representation comparisons.
fn as_i128(v: &Value) -> Option<i128> {
    match *v {
        Value::Int(i) => Some(i128::from(i)),
        Value::UInt(u) => Some(i128::from(u)),
        _ => None,
    }
}

macro_rules! int_partial_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                as_i128(self) == Some(*other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
int_partial_eq!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Deserialization error: a message plus optionally the offending field.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Builds a "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError {
            msg: format!("missing field '{field}' for {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_content(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_content(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                if *self < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, DeError> {
                as_i128(v)
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| {
                        DeError::custom(concat!("expected ", stringify!($t)))
                    })
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, DeError> {
                as_i128(v)
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| {
                        DeError::custom(concat!("expected ", stringify!($t)))
                    })
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! tuple_ser_de {
    ($n:literal => $($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(v: &Value) -> Result<Self, DeError> {
                let a = v
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                if a.len() != $n {
                    return Err(DeError::custom(concat!(
                        "expected array of length ",
                        $n
                    )));
                }
                Ok(($($name::from_content(&a[$idx])?,)+))
            }
        }
    };
}
tuple_ser_de!(1 => A.0);
tuple_ser_de!(2 => A.0, B.1);
tuple_ser_de!(3 => A.0, B.1, C.2);
tuple_ser_de!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_content(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Helpers called by the code the derive macros generate.
// ---------------------------------------------------------------------

/// Views a value as object entries.
#[doc(hidden)]
pub fn __as_object(v: &Value) -> Option<&[(String, Value)]> {
    match v {
        Value::Object(entries) => Some(entries),
        _ => None,
    }
}

/// Views a value as array elements.
#[doc(hidden)]
pub fn __as_array(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Array(a) => Some(a),
        _ => None,
    }
}

/// Looks up and deserializes one named field of a struct.
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, DeError> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(ty, key))?;
    T::from_content(v)
}

/// Looks up and deserializes one `#[serde(default)]` field of a struct:
/// a missing or `null` entry falls back to `Default::default()`.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        None | Some(Value::Null) => Ok(T::default()),
        Some(v) => T::from_content(v),
    }
}

/// Views a value as an externally-tagged enum variant: a single-entry
/// object `{"Variant": payload}`.
#[doc(hidden)]
pub fn __variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(entries) if entries.len() == 1 => {
            Some((entries[0].0.as_str(), &entries[0].1))
        }
        _ => None,
    }
}
