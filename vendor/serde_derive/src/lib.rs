//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! The build environment has no crate registry, so this derive is written
//! against the compiler's own `proc_macro` API — no `syn`/`quote`. It
//! hand-parses the item token stream (field names, tuple arities, enum
//! variant shapes) and emits impls of the stub's `Serialize`/`Deserialize`
//! traits as source text.
//!
//! Supported surface (everything this workspace derives on):
//! - non-generic structs: unit, newtype/tuple, named fields
//! - non-generic enums: unit, newtype, tuple and struct variants
//! - `#[serde(skip)]` on named struct fields (skipped on serialize,
//!   `Default::default()` on deserialize)
//! - `#[serde(default)]` on named struct fields (missing on
//!   deserialize falls back to `Default::default()`; serialization is
//!   unchanged)
//!
//! Other `#[serde(...)]` options (e.g. `skip_serializing_if`) are
//! accepted and ignored, matching the stub's always-serialize-fields
//! behaviour.
//!
//! JSON shape matches upstream serde's externally-tagged default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// Derives the stub `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, item) = parse_item(input);
    gen_serialize(&name, &item)
        .parse()
        .expect("generated impl parses")
}

/// Derives the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, item) = parse_item(input);
    gen_deserialize(&name, &item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Flags carried by `#[serde(...)]` attributes this derive honors.
#[derive(Default, Clone, Copy)]
struct AttrFlags {
    skip: bool,
    default: bool,
}

/// Consumes leading attributes (`#[...]`), returning the `#[serde(...)]`
/// flags found among them.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> AttrFlags {
    let mut flags = AttrFlags::default();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let found = serde_attr_flags(&g.stream());
                        flags.skip |= found.skip;
                        flags.default |= found.default;
                        *pos += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    flags
}

fn serde_attr_flags(stream: &TokenStream) -> AttrFlags {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut flags = AttrFlags::default();
    if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) = (tokens.first(), tokens.get(1))
    {
        if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis {
            for t in g.stream() {
                if let TokenTree::Ident(i) = &t {
                    match i.to_string().as_str() {
                        "skip" => flags.skip = true,
                        "default" => flags.default = true,
                        _ => {}
                    }
                }
            }
        }
    }
    flags
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if g.delimiter() == Delimiter::Parenthesis {
                *pos += 1;
            }
        }
    }
}

/// Consumes tokens of a type (or discriminant expression) up to a
/// top-level `,`, tracking `<`/`>` nesting depth.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let flags = skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("expected ':' after field name, found {other}"),
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // the ',' (or past the end)
        fields.push(Field {
            name,
            skip: flags.skip,
            default: flags.default,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        pos += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip any discriminant and the trailing ','.
        skip_type(&tokens, &mut pos);
        pos += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Item) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected 'struct' or 'enum', found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic type '{name}'");
    }
    let item = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            None => Item::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(other) => panic!("unexpected token after struct name: {other}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g.stream()))
            }
            _ => panic!("expected enum body for '{name}'"),
        },
        other => panic!("cannot derive for item kind '{other}'"),
    };
    (name, item)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::new();
    out.push_str("{ let mut __fields: Vec<(String, serde::Value)> = Vec::new(); ");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__fields.push((String::from(\"{n}\"), serde::Serialize::to_content({p}{n}))); ",
            n = f.name,
            p = access_prefix,
        ));
    }
    out.push_str("serde::Value::Object(__fields) }");
    out
}

fn de_named_fields(ty_label: &str, ctor: &str, fields: &[Field], obj_expr: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{ let __obj = serde::__as_object({obj_expr}).ok_or_else(|| \
         serde::DeError::custom(\"expected object for {ty_label}\"))?; Ok({ctor} {{ "
    ));
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: Default::default(), ", f.name));
        } else if f.default {
            out.push_str(&format!(
                "{n}: serde::__field_or_default(__obj, \"{n}\")?, ",
                n = f.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: serde::__field(__obj, \"{n}\", \"{ty_label}\")?, ",
                n = f.name
            ));
        }
    }
    out.push_str("}) }");
    out
}

fn gen_serialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::UnitStruct => "serde::Value::Null".to_owned(),
        Item::TupleStruct(1) => "serde::Serialize::to_content(&self.0)".to_owned(),
        Item::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Item::NamedStruct(fields) => ser_named_fields(fields, "&self."),
        Item::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(String::from(\"{vn}\")), "
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => serde::Value::Object(vec![(String::from(\"{vn}\"), \
                         serde::Serialize::to_content(__f0))]), "
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_content(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Object(vec![(String::from(\"{vn}\"), \
                             serde::Value::Array(vec![{}]))]), ",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Object(vec![(String::from(\"{vn}\"), {inner})]), ",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{ \
         fn to_content(&self) -> serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::UnitStruct => format!(
            "match __v {{ serde::Value::Null => Ok({name}), \
             _ => Err(serde::DeError::custom(\"expected null for {name}\")) }}"
        ),
        Item::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_content(__v)?))")
        }
        Item::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_content(&__arr[{i}])?"))
                .collect();
            format!(
                "{{ let __arr = serde::__as_array(__v).ok_or_else(|| \
                 serde::DeError::custom(\"expected array for {name}\"))?; \
                 if __arr.len() != {n} {{ return Err(serde::DeError::custom(\
                 \"wrong tuple arity for {name}\")); }} \
                 Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Item::NamedStruct(fields) => de_named_fields(name, name, fields, "__v"),
        Item::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}), "))
                    }
                    VariantShape::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_content(__inner)?)), "
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_content(&__arr[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __arr = serde::__as_array(__inner)\
                             .ok_or_else(|| serde::DeError::custom(\
                             \"expected array for {name}::{vn}\"))?; \
                             if __arr.len() != {n} {{ return Err(serde::DeError::custom(\
                             \"wrong arity for {name}::{vn}\")); }} \
                             Ok({name}::{vn}({})) }}, ",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inner = de_named_fields(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields,
                            "__inner",
                        );
                        payload_arms.push_str(&format!("\"{vn}\" => {inner}, "));
                    }
                }
            }
            format!(
                "{{ if let serde::Value::Str(__s) = __v {{ \
                 match __s.as_str() {{ {unit_arms} _ => return Err(\
                 serde::DeError::custom(format!(\"unknown variant '{{}}' for {name}\", __s))) }} }} \
                 if let Some((__tag, __inner)) = serde::__variant(__v) {{ \
                 return match __tag {{ {payload_arms} _ => Err(\
                 serde::DeError::custom(format!(\"unknown variant '{{}}' for {name}\", __tag))) }}; }} \
                 Err(serde::DeError::custom(\"invalid enum value for {name}\")) }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{ \
         fn from_content(__v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }} }}"
    )
}
