//! Anomaly detection: the ToyADMOS deep auto-encoder end-to-end — deploy
//! on DIANA, reconstruct machine-sound feature frames, and score anomalies
//! by reconstruction error, with the per-inference energy estimate that
//! motivates running this always-on workload on an accelerator instead of
//! the CPU.
//!
//! ```sh
//! cargo run --release -p htvm --example anomaly_detection
//! ```

use htvm::{Compiler, DeployConfig, Machine};
use htvm_models::{random_input, toyadmos_dae, QuantScheme};
use htvm_soc::EnergyConfig;

/// Mean squared reconstruction error between input frames and the
/// auto-encoder output — the ToyADMOS anomaly score.
fn reconstruction_error(input: &htvm::Tensor, output: &htvm::Tensor) -> f64 {
    let n = input.data().len() as f64;
    input
        .data()
        .iter()
        .zip(output.data())
        .map(|(&a, &b)| {
            let d = f64::from(a - b);
            d * d
        })
        .sum::<f64>()
        / n
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = toyadmos_dae(QuantScheme::Int8);
    let compiler = Compiler::new().with_deploy(DeployConfig::Digital);
    let artifact = compiler.compile(&model.graph)?;
    let machine = Machine::new(*compiler.platform());
    let energy = EnergyConfig::default();

    println!("ToyADMOS auto-encoder on simulated DIANA (digital)\n");
    println!(
        "binary {} kB, {} accelerated dense layers, L2 activation peak {} B\n",
        artifact.binary.total_kb(),
        artifact.steps_on(htvm::EngineKind::Digital),
        artifact.program.activation_peak
    );

    // Score a batch of frames. With synthetic weights the absolute error is
    // meaningless, but the *pipeline* is the real one: the anomaly score is
    // the reconstruction error of the deployed int8 network.
    println!(
        "{:>6} {:>16} {:>12} {:>12}",
        "frame", "recon. error", "latency ms", "energy uJ"
    );
    let mut scores = Vec::new();
    for frame in 0..8u64 {
        let input = random_input(1000 + frame, &[640]);
        let report = machine.run(&artifact.program, std::slice::from_ref(&input))?;
        let err = reconstruction_error(&input, &report.outputs[0]);
        println!(
            "{:>6} {:>16.1} {:>12.3} {:>12.2}",
            frame,
            err,
            compiler.platform().cycles_to_ms(report.total_cycles()),
            energy.run_uj(&report)
        );
        scores.push(err);
    }

    // The detection rule: flag frames whose error exceeds the batch median
    // by a margin.
    let mut sorted = scores.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let flagged = scores.iter().filter(|&&s| s > median * 1.05).count();
    println!(
        "\nmedian score {median:.1}; {flagged} of {} frames above 1.05x median",
        scores.len()
    );

    // Why the accelerator matters for an always-on monitor: energy/frame.
    let cpu = Compiler::new().with_deploy(DeployConfig::CpuTvm);
    let cpu_artifact = cpu.compile(&model.graph)?;
    let cpu_report = Machine::new(*cpu.platform()).run(&cpu_artifact.program, &[model.input(1)])?;
    let acc_report = machine.run(&artifact.program, &[model.input(1)])?;
    println!(
        "energy per inference: CPU {:.2} uJ vs digital {:.2} uJ ({:.0}x less)",
        energy.run_uj(&cpu_report),
        energy.run_uj(&acc_report),
        energy.run_uj(&cpu_report) / energy.run_uj(&acc_report)
    );
    Ok(())
}
