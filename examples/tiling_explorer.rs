//! Tiling explorer: watch the DORY solver react as the L1 budget shrinks,
//! with and without DIANA's accelerator-aware heuristics (paper §III-B/C,
//! Eq. 1–5). A compact interactive view of what drives Fig. 4.
//!
//! ```sh
//! cargo run --release -p htvm --example tiling_explorer [C K H W]
//! ```

use htvm::{MemoryBudget, TilingObjective};
use htvm_dory::{solve, tile_memory, LayerGeometry};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let [c, k, h, w] = match args.as_slice() {
        [c, k, h, w] => [*c, *k, *h, *w],
        _ => [64, 64, 32, 32],
    };
    let geom = LayerGeometry::conv2d(c, k, h, w, 3, 3, (1, 1), (1, 1, 1, 1));
    println!(
        "conv2d C={c} K={k} {h}x{w}, 3x3/s1: {} MACs, {} B weights, {} B in, {} B out\n",
        geom.macs(),
        geom.weight_bytes(),
        geom.input_bytes(),
        geom.output_bytes()
    );
    println!(
        "{:<9} | {:<30} | {:<30}",
        "L1 (kB)", "memory-only tile (c,k,oy,ox)", "diana heuristics tile (c,k,oy,ox)"
    );
    for kb in [256usize, 128, 64, 32, 16, 8, 4, 2] {
        let budget = MemoryBudget {
            act_bytes: kb * 1024,
            weight_bytes: Some(64 * 1024),
            array: None,
        };
        let mut cells = Vec::new();
        for obj in [
            TilingObjective::memory_only(),
            TilingObjective::diana_digital(),
        ] {
            match solve(&geom, &budget, &obj) {
                Ok(s) => {
                    let m = tile_memory(&geom, &s.tile);
                    cells.push(format!(
                        "({},{},{},{}) x{}{} {}B",
                        s.tile.c_t,
                        s.tile.k_t,
                        s.tile.oy_t,
                        s.tile.ox_t,
                        s.n_tiles,
                        if s.fits_untiled { " untiled" } else { "" },
                        m.total(),
                    ));
                }
                Err(_) => cells.push("does not fit".into()),
            }
        }
        println!("{:<9} | {:<30} | {:<30}", kb, cells[0], cells[1]);
    }
    println!(
        "\nheuristic tiles keep c_t and the derived input width multiples of 16 \
         (PE-array alignment, Eq. 3-4)\nand span the full output width so DMA \
         transfers stay contiguous (Eq. 5)."
    );
}
