//! Quickstart: compile a small quantized CNN for the simulated DIANA SoC
//! and run it on all four deployment configurations.
//!
//! ```sh
//! cargo run --release -p htvm --example quickstart
//! ```

use htvm::{Compiler, DeployConfig, Machine};
use htvm_ir::{DType, GraphBuilder, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a quantized graph: two conv blocks and a tiny classifier.
    //    (In a real deployment this comes from a TFLite/ONNX importer; the
    //    builder plays that role here.)
    let mut b = GraphBuilder::new();
    let x = b.input("image", &[3, 32, 32], DType::I8);

    let w1 = b.constant("w1", Tensor::zeros(DType::I8, &[16, 3, 3, 3]));
    let b1 = b.constant("b1", Tensor::zeros(DType::I32, &[16]));
    let c1 = b.conv2d(x, w1, (1, 1), (1, 1, 1, 1))?;
    let c1 = b.bias_add(c1, b1)?;
    let c1 = b.requantize(c1, 7, true)?;

    // A ternary conv: dispatched to the analog IMC accelerator.
    let w2 = b.constant("w2", Tensor::zeros(DType::Ternary, &[32, 16, 3, 3]));
    let b2 = b.constant("b2", Tensor::zeros(DType::I32, &[32]));
    let c2 = b.conv2d(c1, w2, (2, 2), (0, 1, 0, 1))?;
    let c2 = b.bias_add(c2, b2)?;
    let c2 = b.requantize(c2, 5, true)?;

    let p = b.global_avg_pool(c2)?;
    let f = b.flatten(p)?;
    let wd = b.constant("wd", Tensor::zeros(DType::I8, &[10, 32]));
    let d = b.dense(f, wd)?;
    let d = b.requantize(d, 6, false)?;
    let out = b.softmax(d)?;
    let graph = b.finish(&[out])?;

    println!(
        "graph: {} nodes, {} MACs\n",
        graph.len(),
        graph.total_macs()
    );

    // 2. Compile for each DIANA configuration and compare.
    let input = Tensor::zeros(DType::I8, &[3, 32, 32]);
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "config", "cycles", "latency ms", "size kB", "cpu", "digital", "analog"
    );
    for deploy in [
        DeployConfig::CpuTvm,
        DeployConfig::Digital,
        DeployConfig::Analog,
        DeployConfig::Both,
    ] {
        let compiler = Compiler::new().with_deploy(deploy);
        let artifact = compiler.compile(&graph)?;
        let machine = Machine::new(*compiler.platform());
        let report = machine.run(&artifact.program, std::slice::from_ref(&input))?;
        println!(
            "{:<12} {:>12} {:>12.3} {:>10} {:>8} {:>8} {:>8}",
            format!("{deploy:?}"),
            report.total_cycles(),
            compiler.platform().cycles_to_ms(report.total_cycles()),
            artifact.binary.total_kb(),
            artifact.steps_on(htvm::EngineKind::Cpu),
            artifact.steps_on(htvm::EngineKind::Digital),
            artifact.steps_on(htvm::EngineKind::Analog),
        );
    }

    // 3. Inspect the per-layer profile of the heterogeneous deployment.
    let compiler = Compiler::new().with_deploy(DeployConfig::Both);
    let artifact = compiler.compile(&graph)?;
    let machine = Machine::new(*compiler.platform());
    let report = machine.run(&artifact.program, &[input])?;
    println!("\nper-layer profile (Both):");
    for layer in &report.layers {
        println!(
            "  {:<28} {:<8} {:>9} cycles ({} tiles, {} MACs)",
            layer.name,
            layer.engine.to_string(),
            layer.cycles.total(),
            layer.n_tiles,
            layer.macs
        );
    }
    Ok(())
}
