//! Porting HTVM to a new platform (paper §III-C): "the user has to
//! provide to HTVM only three components: (1) the hardware specifications
//! ... and operations supported by the dedicated hardware, (2) the
//! heuristics to maximize the accelerator utilization and (3) the
//! platform-specific instructions".
//!
//! This example ports the flow to a hypothetical "MEGA" SoC — a scaled-up
//! DIANA with a 32×32 digital PE array, 1 MB of shared L1 and a 256 kB
//! weight store — by supplying exactly those three pieces:
//!
//! 1. hardware specs → a custom [`DianaConfig`],
//! 2. heuristics     → a custom Eq. 1 [`TilingObjective`] aligned to the
//!    32-lane array,
//! 3. instructions   → the cost constants inside the config (the cost
//!    model plays the role of the dedicated kernel library).
//!
//! ```sh
//! cargo run --release -p htvm --example custom_platform
//! ```

use htvm::{Compiler, DeployConfig, DianaConfig, LowerOptions, Machine, TilingObjective};
use htvm_dory::Heuristic;
use htvm_models::{resnet8, QuantScheme};

#[allow(clippy::field_reassign_with_default)]
fn mega_soc() -> DianaConfig {
    let mut cfg = DianaConfig::default();
    // (1) hardware specifications.
    cfg.l1_act_bytes = 1024 * 1024;
    cfg.digital.pe_rows = 32;
    cfg.digital.pe_cols = 32;
    cfg.digital.weight_bytes = 256 * 1024;
    // (3) platform-specific instruction costs: a wider array takes a bit
    // longer to configure per tile.
    cfg.digital.tile_overhead = 450;
    cfg
}

/// (2) the utilization heuristics, re-derived for 32 PE lanes.
fn mega_objective() -> TilingObjective {
    TilingObjective {
        alpha: 1.0,
        terms: vec![
            (Heuristic::PeAlignC { modulo: 32 }, 2.0),
            (Heuristic::PeAlignIx { modulo: 32 }, 2.0),
            (Heuristic::DmaMaxIy, 0.4),
        ],
        cost_model: None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = resnet8(QuantScheme::Int8);

    println!("porting check: ResNet-8, digital-only deployment\n");
    let mut rows = Vec::new();
    for (name, cfg, objective) in [
        (
            "DIANA (16x16)",
            DianaConfig::default(),
            TilingObjective::diana_digital(),
        ),
        ("MEGA (32x32)", mega_soc(), mega_objective()),
    ] {
        let compiler = Compiler::new()
            .with_platform(cfg)
            .with_lower_options(LowerOptions {
                digital_objective: objective,
                ..LowerOptions::default()
            })
            .with_deploy(DeployConfig::Digital);
        let artifact = compiler.compile(&model.graph)?;
        let machine = Machine::new(cfg);
        let report = machine.run(&artifact.program, &[model.input(1)])?;
        let ms = cfg.cycles_to_ms(report.total_cycles());
        println!(
            "{:<16} {:>10} cycles = {:.3} ms   (digital layers: {})",
            name,
            report.total_cycles(),
            ms,
            artifact.steps_on(htvm::EngineKind::Digital)
        );
        rows.push(report.total_cycles());
    }
    println!(
        "\nMEGA speedup over DIANA: {:.2}x — the same compiler, retargeted by\n\
         swapping the three §III-C components (specs, heuristics, costs).",
        rows[0] as f64 / rows[1] as f64
    );
    assert!(rows[1] < rows[0], "the 4x bigger array must win");
    Ok(())
}
