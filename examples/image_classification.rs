//! Image classification: deploy the MLPerf™ Tiny ResNet-8 and audit the
//! compiler's decisions — per-layer engine assignment, tile configurations
//! chosen by the DORY solver, the L2 memory schedule, and the cycle
//! breakdown the paper reads from DIANA's hardware counters.
//!
//! ```sh
//! cargo run --release -p htvm --example image_classification
//! ```

use htvm::{Compiler, DeployConfig, Machine};
use htvm_models::{resnet8, QuantScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = resnet8(QuantScheme::Int8);
    let compiler = Compiler::new().with_deploy(DeployConfig::Digital);
    let artifact = compiler.compile(&model.graph)?;

    println!("ResNet-8 on simulated DIANA (digital configuration)\n");
    println!("== layer assignment ==");
    for a in &artifact.assignments {
        println!(
            "  {:<28} -> {:<8} {:<24} {:>9} MACs, {} tiles",
            a.name,
            a.engine.to_string(),
            a.pattern.as_deref().unwrap_or("(tvm fused kernel)"),
            a.macs,
            a.n_tiles
        );
    }

    println!("\n== l2 memory schedule ==");
    println!(
        "  activation arena peak: {} bytes (of {} byte L2, {} kB binary)",
        artifact.program.activation_peak,
        compiler.platform().l2_bytes,
        artifact.binary.total_kb()
    );
    for buf in &artifact.program.buffers {
        println!(
            "  {:<28} {:?}{:<14} @ {:>6} (+{} bytes)",
            buf.name,
            buf.kind,
            buf.shape.to_string(),
            buf.offset,
            buf.size
        );
    }

    let machine = Machine::new(*compiler.platform());
    let report = machine.run(&artifact.program, &[model.input(1)])?;
    println!("\n== cycle breakdown ==");
    println!(
        "  {:<28} {:>10} {:>10} {:>10} {:>10}",
        "layer", "compute", "dma", "weights", "overhead"
    );
    for l in &report.layers {
        println!(
            "  {:<28} {:>10} {:>10} {:>10} {:>10}",
            l.name, l.cycles.compute, l.cycles.dma, l.cycles.weight_load, l.cycles.overhead
        );
    }
    println!(
        "\ntotal: {} cycles = {:.3} ms @260 MHz (peak {:.3} ms)",
        report.total_cycles(),
        compiler.platform().cycles_to_ms(report.total_cycles()),
        compiler.platform().cycles_to_ms(report.peak_cycles()),
    );

    // Top-1 result of the (synthetic-weight) classifier, to show the
    // artifact really computes.
    let probs = &report.outputs[0];
    let top = probs
        .data()
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .expect("non-empty output");
    println!("predicted class (synthetic weights): {top}");
    Ok(())
}
