//! Keyword spotting: deploy the MLPerf™ Tiny DS-CNN on every DIANA
//! configuration, reproducing the paper's §IV-C discussion — depthwise
//! layers make the analog-only configuration ~8× slower, while the mixed
//! configuration edges out digital-only by offloading pointwise
//! convolutions to the analog array.
//!
//! ```sh
//! cargo run --release -p htvm --example keyword_spotting
//! ```

use htvm::{Compiler, DeployConfig, EngineKind, Machine};
use htvm_models::{ds_cnn, QuantScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("DS-CNN keyword spotting on simulated DIANA\n");
    let mut results = Vec::new();
    for (deploy, scheme) in [
        (DeployConfig::CpuTvm, QuantScheme::Int8),
        (DeployConfig::Digital, QuantScheme::Int8),
        (DeployConfig::Analog, QuantScheme::Ternary),
        (DeployConfig::Both, QuantScheme::Mixed),
    ] {
        let model = ds_cnn(scheme);
        let compiler = Compiler::new().with_deploy(deploy);
        let artifact = compiler.compile(&model.graph)?;
        let machine = Machine::new(*compiler.platform());
        let report = machine.run(&artifact.program, &[model.input(1)])?;
        let ms = compiler.platform().cycles_to_ms(report.total_cycles());
        println!(
            "{:<10} {:>8.3} ms | {:>3} kB | offload {:>5.1}% of MACs | engines: cpu {}, dig {}, ana {}",
            format!("{deploy:?}"),
            ms,
            artifact.binary.total_kb(),
            100.0 * artifact.offload_fraction(),
            artifact.steps_on(EngineKind::Cpu),
            artifact.steps_on(EngineKind::Digital),
            artifact.steps_on(EngineKind::Analog),
        );
        results.push((deploy, ms, report));
    }

    let analog = results
        .iter()
        .find(|(d, ..)| *d == DeployConfig::Analog)
        .expect("analog result present");
    let mixed = results
        .iter()
        .find(|(d, ..)| *d == DeployConfig::Both)
        .expect("mixed result present");
    println!(
        "\nmixed vs analog-only: {:.1}x faster (paper: 8x)",
        analog.1 / mixed.1
    );

    // Where does the analog-only time go? The depthwise CPU fallback.
    let cpu_cycles = analog.2.engine_cycles(EngineKind::Cpu);
    println!(
        "analog-only spends {:.0}% of its cycles in CPU fallback kernels \
         (depthwise convolutions are unsupported by the IMC array)",
        100.0 * cpu_cycles as f64 / analog.2.total_cycles() as f64
    );
    Ok(())
}
