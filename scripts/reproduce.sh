#!/usr/bin/env bash
# Reproduce every artifact of the HTVM paper and the repo's own checks.
# Usage: scripts/reproduce.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-results}"
mkdir -p "$out"

echo "== tests =="
cargo test --workspace --release 2>&1 | tee "$out/test_output.txt"

echo "== paper artifacts =="
for bin in table1 table2 fig2 fig4 fig5 ablation; do
    echo "-- $bin --"
    cargo run --release -p htvm-bench --bin "$bin" | tee "$out/$bin.txt"
    cargo run --release -p htvm-bench --bin "$bin" -- --json > "$out/$bin.json" 2>/dev/null || true
done

echo "== criterion micro-benches =="
cargo bench -p htvm-bench 2>&1 | tee "$out/bench_output.txt"

echo "== examples =="
for ex in quickstart keyword_spotting image_classification anomaly_detection tiling_explorer custom_platform; do
    echo "-- $ex --"
    cargo run --release -p htvm --example "$ex" | tee "$out/example_$ex.txt"
done

echo "all outputs in $out/"
