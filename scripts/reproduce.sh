#!/usr/bin/env bash
# Reproduce every artifact of the HTVM paper and the repo's own checks.
# Usage: scripts/reproduce.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-results}"
mkdir -p "$out"

echo "== tests =="
cargo test --workspace --release 2>&1 | tee "$out/test_output.txt"

echo "== fault-injection sweep (matches the CI faults jobs) =="
for base in 0 1000 2000; do
    echo "-- seed base $base (debug) --"
    HTVM_FAULT_SEED_BASE="$base" cargo test -p htvm --test fault_injection \
        2>&1 | tee "$out/faults_seed$base.txt"
done
echo "-- seed base 0 (release) --"
HTVM_FAULT_SEED_BASE=0 cargo test -p htvm --release --test fault_injection \
    2>&1 | tee "$out/faults_release.txt"

echo "== model-file import round trip (matches the CI frontend jobs) =="
for base in 0 1000 2000; do
    echo "-- fuzz seed base $base (debug) --"
    HTVM_FUZZ_SEED_BASE="$base" cargo test -p htvm-frontend --test fuzz_import \
        2>&1 | tee "$out/fuzz_import_seed$base.txt"
done
echo "-- fuzz seed base 0 (release) --"
HTVM_FUZZ_SEED_BASE=0 cargo test -p htvm-frontend --release --test fuzz_import \
    2>&1 | tee "$out/fuzz_import_release.txt"
cargo test -p htvm-serve --release --test import_roundtrip \
    2>&1 | tee "$out/import_roundtrip.txt"
echo "-- wire-format compatibility gate --"
cargo test -p htvm-frontend --test backward_compat \
    2>&1 | tee "$out/backward_compat.txt"
# File → importer → bench: emit a zoo model as an HTF container and
# measure it through the import path; the entry must match the zoo sweep.
cargo run --release -p htvm-frontend --example emit_model -- \
    ds_cnn "$out/ds_cnn.htf" mixed
cargo run --release -p htvm-bench --bin report -- \
    --from-file "$out/ds_cnn.htf" --deploy both --out "$out/IMPORT_BENCH.json" \
    | tee "$out/import_bench.txt"

echo "== calibration: sweep -> derive -> check (matches the CI calibration job) =="
# Fresh kernel microbenchmark (wall times are host-specific; committed
# artifacts are NOT overwritten), then a derivation from it, plus the
# staleness check of the committed CALIBRATION.json against the committed
# KERNELS_BENCH.json.
cargo run --release -p htvm-bench --bin kernels -- --out "$out/KERNELS_BENCH.json" \
    | tee "$out/kernels_bench.txt"
cargo run --release -p htvm-bench --bin calibrate -- \
    --bench "$out/KERNELS_BENCH.json" --out "$out/CALIBRATION.json" \
    | tee "$out/calibrate.txt"
cargo run --release -p htvm-bench --bin calibrate -- \
    --bench KERNELS_BENCH.json --out CALIBRATION.json --check \
    | tee "$out/calibrate_check.txt"

echo "== benchmark report + regression gate (matches the CI bench-report job) =="
# The committed calibration adds the *_cal rows; their simulated cycles
# gate at the same 2% tolerance as the heuristic rows.
cargo run --release -p htvm-bench --bin report -- --out "$out/BENCH.json" \
    --calibration CALIBRATION.json \
    | tee "$out/bench_report.txt"
cargo run --release -p htvm-bench --bin bench-diff -- \
    BENCH_BASELINE.json "$out/BENCH.json" --cycle-tol 2 \
    | tee "$out/bench_diff.txt"

echo "== serve soak + front door + fleet (matches the CI serve / serve-http / fleet jobs) =="
cargo run --release -p htvm-bench --bin serve -- \
    --jobs 96 --workers 4 --min-speedup 5 \
    --front-door --clients 4 \
    --instances 3 --restart --max-restart-misses 0 \
    --fleet-dir "$out/fleet-cache" --out "$out/SERVE_BENCH.json" \
    | tee "$out/serve_soak.txt"

echo "== paper artifacts =="
for bin in table1 table2 fig2 fig4 fig5 ablation; do
    echo "-- $bin --"
    cargo run --release -p htvm-bench --bin "$bin" | tee "$out/$bin.txt"
    cargo run --release -p htvm-bench --bin "$bin" -- --json > "$out/$bin.json" 2>/dev/null || true
done

echo "== criterion micro-benches =="
cargo bench -p htvm-bench 2>&1 | tee "$out/bench_output.txt"

echo "== examples =="
for ex in quickstart keyword_spotting image_classification anomaly_detection tiling_explorer custom_platform; do
    echo "-- $ex --"
    cargo run --release -p htvm --example "$ex" | tee "$out/example_$ex.txt"
done

echo "all outputs in $out/"
