//! Property and integration tests for the L2 memory schedule — the
//! "memory schedule for allocating and de-allocating intermediate
//! activation tensors in main memory" HTVM emits (paper §III).

use htvm::{Compiler, DeployConfig};
use htvm_dory::memplan::{plan, BufferReq};
use htvm_models::{all_models, mobilenet_v1, QuantScheme};
use htvm_soc::Step;
use proptest::prelude::*;

fn req_strategy() -> impl Strategy<Value = BufferReq> {
    (0usize..2048, 0usize..12, 0usize..12).prop_map(|(size, a, b)| BufferReq {
        id: 0,
        size,
        first_use: a.min(b),
        last_use: a.max(b),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No two buffers with overlapping lifetimes share bytes, and the peak
    /// is exactly the densest point of the packing.
    #[test]
    fn planner_never_overlaps_live_buffers(mut reqs in prop::collection::vec(req_strategy(), 1..24)) {
        for (i, r) in reqs.iter_mut().enumerate() {
            r.id = i;
        }
        let p = plan(&reqs, usize::MAX).expect("unbounded capacity");
        for a in &reqs {
            for b in &reqs {
                if a.id >= b.id || a.size == 0 || b.size == 0 {
                    continue;
                }
                let live = a.first_use <= b.last_use && b.first_use <= a.last_use;
                if live {
                    let (ao, bo) = (p.offset_of(a.id).unwrap(), p.offset_of(b.id).unwrap());
                    prop_assert!(
                        ao + a.size <= bo || bo + b.size <= ao,
                        "buffers {} and {} overlap", a.id, b.id
                    );
                }
            }
        }
        // Peak equals the highest end offset among placed buffers.
        let max_end = reqs
            .iter()
            .map(|r| p.offset_of(r.id).unwrap() + r.size)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(p.peak, max_end);
    }

    /// The planner never does worse than no-reuse allocation.
    #[test]
    fn planner_beats_or_matches_naive(mut reqs in prop::collection::vec(req_strategy(), 1..24)) {
        for (i, r) in reqs.iter_mut().enumerate() {
            r.id = i;
        }
        let p = plan(&reqs, usize::MAX).expect("unbounded capacity");
        let naive: usize = reqs.iter().map(|r| r.size).sum();
        prop_assert!(p.peak <= naive);
    }
}

/// Reconstruct per-buffer liveness from a compiled program's schedule and
/// assert planned offsets never alias while live.
fn assert_no_live_overlap(program: &htvm_soc::Program) {
    let n = program.steps.len();
    let mut live: Vec<(usize, usize)> = vec![(usize::MAX, 0); program.buffers.len()];
    for &b in &program.inputs {
        live[b.0].0 = 0;
    }
    for (i, s) in program.steps.iter().enumerate() {
        let mut touch = |b: htvm_soc::BufferId| {
            live[b.0].0 = live[b.0].0.min(i);
            live[b.0].1 = live[b.0].1.max(i);
        };
        match s {
            Step::Accel {
                input,
                input2,
                output,
                ..
            } => {
                touch(*input);
                if let Some(i2) = input2 {
                    touch(*i2);
                }
                touch(*output);
            }
            Step::CpuFused { inputs, output, .. } => {
                for b in inputs {
                    touch(*b);
                }
                touch(*output);
            }
        }
    }
    for &o in &program.outputs {
        live[o.0].1 = n;
    }
    for a in &program.buffers {
        for b in &program.buffers {
            if a.id >= b.id || a.size == 0 || b.size == 0 {
                continue;
            }
            let (af, al) = live[a.id.0];
            let (bf, bl) = live[b.id.0];
            if af <= bl && bf <= al {
                assert!(
                    a.offset + a.size <= b.offset || b.offset + b.size <= a.offset,
                    "live buffers {} and {} overlap in L2",
                    a.name,
                    b.name
                );
            }
        }
    }
}

#[test]
fn compiled_networks_have_sound_memory_schedules() {
    for model in all_models(QuantScheme::Int8) {
        let artifact = Compiler::new()
            .with_deploy(DeployConfig::Digital)
            .compile(&model.graph)
            .expect("compiles");
        assert_no_live_overlap(&artifact.program);
        // Everything must fit L2 next to the binary image.
        assert!(
            artifact.program.activation_peak + artifact.binary.total() <= 512 * 1024,
            "{}: peak {} + binary {}",
            model.name,
            artifact.program.activation_peak,
            artifact.binary.total()
        );
    }
}

#[test]
fn htvm_planning_beats_naive_allocation_on_mobilenet() {
    let model = mobilenet_v1(QuantScheme::Int8);
    let planned = Compiler::new()
        .with_deploy(DeployConfig::Digital)
        .compile(&model.graph)
        .expect("planned deployment fits");
    // The no-reuse footprint is the sum of all activation buffers.
    let naive_sum: usize = planned.program.buffers.iter().map(|b| b.size).sum();
    assert!(
        planned.program.activation_peak * 3 < naive_sum,
        "reuse should cut the footprint by >3x: peak {} vs sum {}",
        planned.program.activation_peak,
        naive_sum
    );
}

#[test]
fn buffer_offsets_respect_capacity() {
    for model in all_models(QuantScheme::Mixed) {
        let artifact = Compiler::new()
            .with_deploy(DeployConfig::Both)
            .compile(&model.graph)
            .expect("compiles");
        let capacity = 512 * 1024 - artifact.binary.total();
        for b in &artifact.program.buffers {
            assert!(
                b.offset + b.size <= capacity,
                "{}: buffer {} ends at {} beyond capacity {}",
                model.name,
                b.name,
                b.offset + b.size,
                capacity
            );
        }
    }
}
