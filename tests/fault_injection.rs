//! Differential fault-injection harness.
//!
//! The headline invariant of the fault subsystem: for any zoo network and
//! any seeded [`FaultPlan`], the run's outputs are **bit-exact** with the
//! fault-free run — faults only change cycle counts. Transient faults
//! (DMA stalls/failures, L1 denials) are retried with cycle-accounted
//! backoff; permanent engine-offline faults swap the affected step to its
//! pre-compiled CPU fallback mid-run.
//!
//! The seed sweep honours `HTVM_FAULT_SEED_BASE` so CI can shift the
//! whole 32-seed window per job without touching the code.

use htvm::{
    Compiler, DeployConfig, EngineKind, FaultEvent, FaultPlan, Machine, Program, RetryPolicy,
    RunError, RunReport,
};
use htvm_ir::Tensor;
use htvm_models::{all_models, resnet8, Model, QuantScheme};

const SEEDS_PER_MODEL: u64 = 32;

fn seed_base() -> u64 {
    std::env::var("HTVM_FAULT_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn compile(model: &Model, deploy: DeployConfig) -> (Program, Machine) {
    let compiler = Compiler::new().with_deploy(deploy);
    let artifact = compiler
        .compile(&model.graph)
        .unwrap_or_else(|e| panic!("{}: {e}", model.name));
    let machine = Machine::new(*compiler.platform());
    (artifact.program, machine)
}

fn run_clean(machine: &Machine, program: &Program, input: &Tensor) -> RunReport {
    machine
        .run(program, std::slice::from_ref(input))
        .expect("fault-free run succeeds")
}

/// The headline invariant, exercised across the whole zoo: every model,
/// `SEEDS_PER_MODEL` seeded plans each, outputs bit-exact with the
/// fault-free run and total cycles never lower.
#[test]
fn seeded_fault_plans_are_bit_exact_on_every_zoo_model() {
    let base = seed_base();
    let mut plans_with_faults = 0u64;
    for (model, deploy) in [
        (QuantScheme::Int8, DeployConfig::Digital),
        (QuantScheme::Mixed, DeployConfig::Both),
    ]
    .into_iter()
    .flat_map(|(scheme, deploy)| all_models(scheme).into_iter().map(move |m| (m, deploy)))
    {
        let (program, machine) = compile(&model, deploy);
        let input = model.input(99);
        let clean = run_clean(&machine, &program, &input);
        for i in 0..SEEDS_PER_MODEL {
            let seed = base + i;
            let plan = FaultPlan::seeded(seed, program.steps.len());
            let faulty = machine
                .run_with_faults(&program, std::slice::from_ref(&input), &plan)
                .unwrap_or_else(|e| panic!("{} seed {seed} under {deploy:?}: {e}", model.name));
            assert_eq!(
                faulty.outputs, clean.outputs,
                "{} seed {seed} under {deploy:?}: outputs diverged",
                model.name
            );
            assert!(
                faulty.total_cycles() >= clean.total_cycles(),
                "{} seed {seed}: faults made the run faster ({} < {})",
                model.name,
                faulty.total_cycles(),
                clean.total_cycles()
            );
            if faulty.counters.any_faults() {
                plans_with_faults += 1;
                // Injected faults leave evidence: stall cycles or retries
                // in the counters, mirrored per-layer and in the trace.
                let cycle_evidence = faulty.total_cycles() > clean.total_cycles()
                    || faulty.counters.engine_fallbacks > 0;
                assert!(
                    cycle_evidence,
                    "{} seed {seed}: counters report faults but cycles are unchanged",
                    model.name
                );
            }
        }
    }
    // The seeded generator must actually inject faults for the sweep to
    // mean anything; the vast majority of plans are non-trivial.
    assert!(
        plans_with_faults > SEEDS_PER_MODEL,
        "only {plans_with_faults} plans injected any faults"
    );
}

/// Satellite 5: `run_with_faults` with the empty plan is `run`, cycle for
/// cycle.
#[test]
fn empty_plan_reproduces_the_fault_free_run_exactly() {
    for model in all_models(QuantScheme::Int8) {
        let (program, machine) = compile(&model, DeployConfig::Digital);
        let input = model.input(7);
        let clean = run_clean(&machine, &program, &input);
        let empty = machine
            .run_with_faults(&program, std::slice::from_ref(&input), &FaultPlan::none())
            .unwrap();
        assert_eq!(empty.outputs, clean.outputs, "{}", model.name);
        assert_eq!(
            empty.total_cycles(),
            clean.total_cycles(),
            "{}: empty plan changed cycle counts",
            model.name
        );
        assert!(!empty.counters.any_faults(), "{}", model.name);
        for (a, b) in empty.layers.iter().zip(&clean.layers) {
            assert_eq!(a.cycles, b.cycles, "{} layer {}", model.name, a.name);
        }
    }
}

/// Stalls and retries injected into a real network are visible in the
/// perf counters, the per-layer profiles and the chrome trace.
#[test]
fn injected_stalls_show_up_in_counters_and_trace() {
    let model = resnet8(QuantScheme::Int8);
    let (program, machine) = compile(&model, DeployConfig::Digital);
    let input = model.input(3);
    let clean = run_clean(&machine, &program, &input);
    let plan = FaultPlan::none()
        .with_event(FaultEvent::DmaStall {
            transfer: 0,
            cycles: 12_345,
        })
        .with_event(FaultEvent::DmaFail {
            transfer: 2,
            attempts: 2,
        });
    let faulty = machine
        .run_with_faults(&program, std::slice::from_ref(&input), &plan)
        .unwrap();
    assert_eq!(faulty.outputs, clean.outputs);
    assert!(faulty.counters.dma_stall_cycles >= 12_345);
    assert_eq!(faulty.counters.dma_retries, 2);
    assert_eq!(
        faulty.total_cycles(),
        clean.total_cycles() + faulty.counters.total_stall_cycles()
    );
    let stalled: Vec<_> = faulty
        .layers
        .iter()
        .filter(|l| l.cycles.stall > 0)
        .collect();
    assert!(!stalled.is_empty(), "no layer recorded the stall");
    let trace = faulty.to_chrome_trace();
    assert!(trace.contains("\"faults\""), "no faults row in trace");
    assert!(
        trace.contains(&format!("\"stall:{}\"", stalled[0].name)),
        "no stall span for {}",
        stalled[0].name
    );
    // The fault-free trace has no faults row at all.
    assert!(!clean.to_chrome_trace().contains("\"faults\""));
}

/// A permanent engine fault mid-run swaps the step to its CPU fallback:
/// same bits, slower run, fallback recorded in the counters.
#[test]
fn engine_offline_mid_run_degrades_gracefully() {
    let model = resnet8(QuantScheme::Int8);
    let (program, machine) = compile(&model, DeployConfig::Digital);
    let input = model.input(11);
    let clean = run_clean(&machine, &program, &input);
    // Take the digital engine down from the middle of the network on.
    let mid = program.steps.len() / 2;
    let plan = FaultPlan::none().with_event(FaultEvent::EngineOffline {
        engine: EngineKind::Digital,
        layer: mid,
    });
    let faulty = machine
        .run_with_faults(&program, std::slice::from_ref(&input), &plan)
        .unwrap();
    assert_eq!(faulty.outputs, clean.outputs, "fallback changed the bits");
    assert!(faulty.counters.engine_fallbacks > 0, "no fallback taken");
    assert!(faulty.total_cycles() > clean.total_cycles());
    let fallback_layers: Vec<_> = faulty
        .layers
        .iter()
        .filter(|l| l.name.ends_with("_cpu_fallback"))
        .collect();
    assert_eq!(
        fallback_layers.len() as u64,
        faulty.counters.engine_fallbacks
    );
    for l in &fallback_layers {
        assert_eq!(l.engine, EngineKind::Cpu);
    }
}

/// The engine dies exactly at the attention matmul: the step degrades to
/// its CPU fallback — the same multiset of i32 products, so bit-exact —
/// and the rest of the network keeps running on the recovered engine
/// state machine. The second operand of a matmul is a runtime activation
/// (not baked weights), so this exercises the two-input fallback path.
#[test]
fn engine_offline_at_the_attention_matmul_falls_back_bit_exactly() {
    let model = htvm_models::tiny_transformer(QuantScheme::Int8);
    let (program, machine) = compile(&model, DeployConfig::Digital);
    let matmul_steps: Vec<usize> = program
        .steps
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            htvm::Step::Accel { desc, .. } if desc.geom.kind == htvm::LayerKind::MatMul => Some(i),
            _ => None,
        })
        .collect();
    assert_eq!(matmul_steps.len(), 2, "QK^T and the context matmul");
    let input = model.input(23);
    let clean = run_clean(&machine, &program, &input);
    for &step in &matmul_steps {
        let plan = FaultPlan::none().with_event(FaultEvent::EngineOffline {
            engine: EngineKind::Digital,
            layer: step,
        });
        let faulty = machine
            .run_with_faults(&program, std::slice::from_ref(&input), &plan)
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        assert_eq!(
            faulty.outputs, clean.outputs,
            "attention fallback at step {step} changed the bits"
        );
        assert!(faulty.counters.engine_fallbacks >= 1);
        assert!(
            faulty
                .layers
                .iter()
                .any(|l| l.name.ends_with("_cpu_fallback") && l.engine == EngineKind::Cpu),
            "step {step}: no CPU fallback layer recorded"
        );
    }
}

/// Without compiled fallbacks, the same engine fault is a structured
/// error carrying the failing layer index and engine — no string
/// matching needed.
#[test]
fn engine_offline_without_fallbacks_is_a_structured_error() {
    let model = resnet8(QuantScheme::Int8);
    let compiler = Compiler::new()
        .with_deploy(DeployConfig::Digital)
        .with_fallbacks(false);
    let artifact = compiler.compile(&model.graph).unwrap();
    assert!(artifact.program.fallbacks.is_empty());
    let machine = Machine::new(*compiler.platform());
    let input = model.input(11);
    let plan = FaultPlan::none().with_event(FaultEvent::EngineOffline {
        engine: EngineKind::Digital,
        layer: 0,
    });
    let err = machine
        .run_with_faults(&artifact.program, &[input], &plan)
        .expect_err("no fallback to degrade to");
    let RunError::EngineUnavailable {
        layer_index,
        engine,
        ..
    } = &err
    else {
        panic!("expected EngineUnavailable, got {err:?}");
    };
    assert_eq!(*engine, EngineKind::Digital);
    assert_eq!(err.layer_index(), Some(*layer_index));
    assert_eq!(err.engine(), Some(EngineKind::Digital));
}

/// A DMA transfer that keeps failing past the retry budget aborts the run
/// with the failing layer and transfer identified.
#[test]
fn dma_failure_past_retry_budget_aborts_with_context() {
    let model = resnet8(QuantScheme::Int8);
    let (program, machine) = compile(&model, DeployConfig::Digital);
    let input = model.input(5);
    let plan = FaultPlan::none().with_event(FaultEvent::DmaFail {
        transfer: 0,
        attempts: RetryPolicy::default().max_retries + 1,
    });
    let err = machine
        .run_with_faults(&program, &[input], &plan)
        .expect_err("unrecoverable DMA fault");
    let RunError::DmaFailed {
        layer_index,
        transfer,
        attempts,
        ..
    } = &err
    else {
        panic!("expected DmaFailed, got {err:?}");
    };
    assert_eq!(*layer_index, 0);
    assert_eq!(*transfer, 0);
    assert_eq!(*attempts, RetryPolicy::default().max_retries + 1);
    assert_eq!(err.layer_index(), Some(0));
}

/// Fault plans are plain data: serializable, and the seeded generator is
/// a pure function of its seed.
#[test]
fn fault_plans_are_deterministic_and_serializable() {
    let a = FaultPlan::seeded(42, 12);
    let b = FaultPlan::seeded(42, 12);
    assert_eq!(a, b);
    assert_ne!(a, FaultPlan::seeded(43, 12));
    let json = serde_json::to_string(&a).unwrap();
    let back: FaultPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back);

    // Determinism end to end: the same plan on the same model produces
    // the same report, cycle for cycle.
    let model = resnet8(QuantScheme::Int8);
    let (program, machine) = compile(&model, DeployConfig::Digital);
    let input = model.input(1);
    let plan = FaultPlan::seeded(42, program.steps.len());
    let r1 = machine
        .run_with_faults(&program, std::slice::from_ref(&input), &plan)
        .unwrap();
    let r2 = machine
        .run_with_faults(&program, std::slice::from_ref(&input), &plan)
        .unwrap();
    assert_eq!(r1.outputs, r2.outputs);
    assert_eq!(r1.total_cycles(), r2.total_cycles());
    assert_eq!(r1.counters, r2.counters);
}
