//! End-to-end fuzzing: random network topologies through the whole
//! pipeline — pattern matching, dispatch, tiling, memory planning,
//! simulation — must stay bit-exact against the reference interpreter in
//! every deployment configuration.

use htvm::{Compiler, DeployConfig, Machine};
use htvm_ir::{DType, Graph, GraphBuilder, NodeId, PoolKind, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy)]
enum Block {
    Conv {
        k: usize,
        stride: usize,
        relu: bool,
        ternary: bool,
    },
    Depthwise,
    Residual,
    MaxPool,
    AvgPoolHead, // global avg pool + dense classifier; terminal-ish
}

fn block_strategy() -> impl Strategy<Value = Block> {
    prop_oneof![
        (
            prop_oneof![Just(8usize), Just(12), Just(16)],
            1usize..=2,
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(k, stride, relu, ternary)| Block::Conv {
                k,
                stride,
                relu,
                ternary
            }),
        Just(Block::Depthwise),
        Just(Block::Residual),
        Just(Block::MaxPool),
        Just(Block::AvgPoolHead),
    ]
}

fn rand_tensor(rng: &mut StdRng, dtype: DType, dims: &[usize]) -> Tensor {
    let mut t = Tensor::zeros(dtype, dims);
    let (lo, hi) = match dtype {
        DType::I32 => (-512, 512),
        d => d.range(),
    };
    for v in t.data_mut() {
        *v = rng.gen_range(lo..=hi);
    }
    t
}

/// Builds a random-but-valid network over a [4, 12, 12] input. Returns
/// `None` if the random block sequence degenerates (spatial dims too
/// small to continue).
fn build(blocks: &[Block], seed: u64) -> Option<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let x = b.input("x", &[4, 12, 12], DType::I8);
    let mut cur = x;
    let mut skip: Option<NodeId> = None;
    for (i, block) in blocks.iter().enumerate() {
        let dims = b.shape_of(cur).ok()?.dims().to_vec();
        if dims.len() != 3 {
            break; // a head block already flattened the network
        }
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        match *block {
            Block::Conv {
                k,
                stride,
                relu,
                ternary,
            } => {
                if h < 3 || w < 3 {
                    continue;
                }
                let dtype = if ternary { DType::Ternary } else { DType::I8 };
                let wt = b.constant(
                    &format!("w{i}"),
                    rand_tensor(&mut rng, dtype, &[k, c, 3, 3]),
                );
                let bias = b.constant(&format!("b{i}"), rand_tensor(&mut rng, DType::I32, &[k]));
                let pad = if stride == 1 {
                    (1, 1, 1, 1)
                } else {
                    (0, 1, 0, 1)
                };
                let conv = b.conv2d(cur, wt, (stride, stride), pad).ok()?;
                let conv = b.bias_add(conv, bias).ok()?;
                skip = None;
                cur = b.requantize(conv, 8, relu).ok()?;
            }
            Block::Depthwise => {
                if h < 3 || w < 3 {
                    continue;
                }
                let wt = b.constant(
                    &format!("dw{i}"),
                    rand_tensor(&mut rng, DType::I8, &[c, 3, 3]),
                );
                let bias = b.constant(&format!("db{i}"), rand_tensor(&mut rng, DType::I32, &[c]));
                let d = b.depthwise_conv2d(cur, wt, (1, 1), (1, 1, 1, 1)).ok()?;
                let d = b.bias_add(d, bias).ok()?;
                skip = Some(cur);
                cur = b.requantize(d, 6, true).ok()?;
            }
            Block::Residual => {
                if let Some(s) = skip.take() {
                    if b.shape_of(s).ok()?.dims() == b.shape_of(cur).ok()?.dims() {
                        let sum = b.add(cur, s).ok()?;
                        cur = b.requantize(sum, 1, false).ok()?;
                    }
                }
            }
            Block::MaxPool => {
                if h < 2 || w < 2 {
                    continue;
                }
                skip = None;
                cur = b
                    .pool2d(cur, PoolKind::Max, (2, 2), (2, 2), (0, 0, 0, 0))
                    .ok()?;
            }
            Block::AvgPoolHead => {
                let p = b.global_avg_pool(cur).ok()?;
                let f = b.flatten(p).ok()?;
                let wt = b.constant(&format!("fc{i}"), rand_tensor(&mut rng, DType::I8, &[5, c]));
                let d = b.dense(f, wt).ok()?;
                cur = b.requantize(d, 7, false).ok()?;
                skip = None;
            }
        }
    }
    b.finish(&[cur]).ok()
}

proptest! {
    // Whole-pipeline runs are expensive; a modest case count still covers
    // a wide topology space across CI runs thanks to proptest's RNG.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_networks_stay_bit_exact(
        blocks in prop::collection::vec(block_strategy(), 1..10),
        seed in 0u64..1_000,
    ) {
        let Some(graph) = build(&blocks, seed) else {
            return Ok(()); // degenerate sequence; nothing to check
        };
        let input = htvm_models::random_input(seed ^ 0xABCD, &[4, 12, 12]);
        let expected =
            htvm_kernels::evaluate(&graph, std::slice::from_ref(&input)).expect("reference");
        for deploy in [
            DeployConfig::CpuTvm,
            DeployConfig::Digital,
            DeployConfig::Analog,
            DeployConfig::Both,
        ] {
            let compiler = Compiler::new().with_deploy(deploy);
            let artifact = match compiler.compile(&graph) {
                Ok(a) => a,
                // Tiny L2 overflows can legitimately happen for naive
                // allocation of pathological stacks; that is a valid
                // outcome, not a soundness failure.
                Err(htvm::CompileError::Lower(htvm::LowerError::OutOfMemory(_))) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("{deploy:?}: {e}"))),
            };
            let machine = Machine::new(*compiler.platform());
            let report = machine
                .run(&artifact.program, std::slice::from_ref(&input))
                .map_err(|e| TestCaseError::fail(format!("{deploy:?}: {e}")))?;
            prop_assert_eq!(&report.outputs[0], &expected[0], "config {:?}", deploy);
            prop_assert!(report.peak_cycles() <= report.total_cycles());
        }
    }

    /// Fault-injection differential fuzzing: any seeded fault plan over
    /// any random network leaves the outputs bit-identical to the
    /// fault-free run and never lowers the cycle count (faults only cost
    /// time — stalls, retries, CPU fallbacks).
    #[test]
    fn random_fault_plans_stay_bit_exact(
        blocks in prop::collection::vec(block_strategy(), 1..10),
        seed in 0u64..1_000,
        fault_seed in 0u64..10_000,
    ) {
        let Some(graph) = build(&blocks, seed) else {
            return Ok(()); // degenerate sequence; nothing to check
        };
        let input = htvm_models::random_input(seed ^ 0x5EED, &[4, 12, 12]);
        let compiler = Compiler::new().with_deploy(DeployConfig::Both);
        let artifact = match compiler.compile(&graph) {
            Ok(a) => a,
            Err(htvm::CompileError::Lower(htvm::LowerError::OutOfMemory(_))) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        let machine = Machine::new(*compiler.platform());
        let clean = machine
            .run(&artifact.program, std::slice::from_ref(&input))
            .map_err(|e| TestCaseError::fail(format!("clean: {e}")))?;
        let plan = htvm::FaultPlan::seeded(fault_seed, artifact.program.steps.len());
        let faulty = machine
            .run_with_faults(&artifact.program, std::slice::from_ref(&input), &plan)
            .map_err(|e| TestCaseError::fail(format!("fault seed {fault_seed}: {e}")))?;
        prop_assert_eq!(&faulty.outputs, &clean.outputs, "fault seed {}", fault_seed);
        prop_assert!(
            faulty.total_cycles() >= clean.total_cycles(),
            "faults lowered cycles: {} < {}",
            faulty.total_cycles(),
            clean.total_cycles()
        );
    }
}

#[test]
fn generator_produces_nontrivial_networks() {
    // Guard against the fuzz test silently degenerating: a known block
    // sequence must build a graph with accelerator-eligible layers, and
    // the Both config must offload them.
    let blocks = [
        Block::Conv {
            k: 8,
            stride: 1,
            relu: true,
            ternary: false,
        },
        Block::Depthwise,
        Block::Residual,
        Block::Conv {
            k: 12,
            stride: 2,
            relu: true,
            ternary: true,
        },
        Block::MaxPool,
        Block::AvgPoolHead,
    ];
    let graph = build(&blocks, 7).expect("builds");
    assert!(graph.total_macs() > 10_000, "macs: {}", graph.total_macs());
    let artifact = Compiler::new()
        .with_deploy(DeployConfig::Both)
        .compile(&graph)
        .expect("compiles");
    assert!(artifact.offload_fraction() > 0.9);
    assert!(artifact.steps_on(htvm::EngineKind::Analog) >= 1);
    assert!(artifact.steps_on(htvm::EngineKind::Digital) >= 2);
}
