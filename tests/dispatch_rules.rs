//! Integration tests for the accelerator-aware dispatch layer: which
//! engine each layer of the real MLPerf™ Tiny networks lands on under each
//! deployment configuration (paper §III-A and §IV-C).

use htvm::{Compiler, DeployConfig, EngineKind};
use htvm_models::{ds_cnn, mobilenet_v1, resnet8, toyadmos_dae, QuantScheme};

fn assignments(model: &htvm_models::Model, deploy: DeployConfig) -> Vec<htvm::LayerAssignment> {
    Compiler::new()
        .with_deploy(deploy)
        .compile(&model.graph)
        .expect("compiles")
        .assignments
}

#[test]
fn digital_config_takes_every_anchor_kind() {
    // Paper: "all (DW)Conv2D, FC, and Add layers are offloaded to DIANA's
    // 8-bit digital accelerator".
    let a = assignments(&resnet8(QuantScheme::Int8), DeployConfig::Digital);
    let digital: Vec<&str> = a
        .iter()
        .filter(|x| x.engine == EngineKind::Digital)
        .filter_map(|x| x.pattern.as_deref())
        .collect();
    assert!(digital.iter().any(|p| p.starts_with("conv2d")));
    assert!(digital.iter().any(|p| p.starts_with("dense")));
    assert!(digital.iter().any(|p| p.starts_with("add")));
    // 10 weighted layers + 3 residual adds.
    assert_eq!(digital.len(), 13);
    // Only pooling / softmax / reshape remain on the CPU.
    for x in a.iter().filter(|x| x.engine == EngineKind::Cpu) {
        assert_eq!(x.macs, 0, "CPU kernel {} should carry no MACs", x.name);
    }
}

#[test]
fn dscnn_digital_has_ten_offloaded_layers() {
    let a = assignments(&ds_cnn(QuantScheme::Int8), DeployConfig::Digital);
    assert_eq!(
        a.iter().filter(|x| x.engine == EngineKind::Digital).count(),
        10 // conv stem + 4x(dw + pw) + fc
    );
}

#[test]
fn analog_config_leaves_depthwise_on_cpu() {
    // Paper: depthwise is unsupported on the analog array; those layers
    // fall back to the RISC-V core in 8-bit.
    let a = assignments(&ds_cnn(QuantScheme::Ternary), DeployConfig::Analog);
    let analog = a.iter().filter(|x| x.engine == EngineKind::Analog).count();
    assert_eq!(analog, 6); // stem + 4 pointwise + fc
    let cpu_macs: u64 = a
        .iter()
        .filter(|x| x.engine == EngineKind::Cpu)
        .map(|x| x.macs)
        .sum();
    assert!(cpu_macs > 0, "depthwise MACs must run on the CPU");
    assert_eq!(
        a.iter().filter(|x| x.engine == EngineKind::Digital).count(),
        0
    );
}

#[test]
fn mixed_recipe_splits_by_bit_width() {
    let a = assignments(&mobilenet_v1(QuantScheme::Mixed), DeployConfig::Both);
    let dig = a.iter().filter(|x| x.engine == EngineKind::Digital).count();
    let ana = a.iter().filter(|x| x.engine == EngineKind::Analog).count();
    // 13 depthwise + stem + classifier are 8-bit; 13 pointwise are ternary.
    assert_eq!(dig, 13 + 2);
    assert_eq!(ana, 13);
}

#[test]
fn mixed_first_and_last_layers_go_digital() {
    let a = assignments(&resnet8(QuantScheme::Mixed), DeployConfig::Both);
    let weighted: Vec<&htvm::LayerAssignment> = a
        .iter()
        .filter(|x| x.engine != EngineKind::Cpu)
        .filter(|x| x.pattern.as_deref().is_some_and(|p| !p.starts_with("add")))
        .collect();
    assert_eq!(
        weighted.first().expect("has layers").engine,
        EngineKind::Digital,
        "first eligible layer digital"
    );
    assert_eq!(
        weighted.last().expect("has layers").engine,
        EngineKind::Digital,
        "last eligible layer digital"
    );
    assert!(
        weighted[1..weighted.len() - 1]
            .iter()
            .all(|x| x.engine == EngineKind::Analog),
        "middle layers analog"
    );
}

#[test]
fn toyadmos_dense_layers_map_to_analog_rows() {
    // Ternary FC layers are deployed on the analog array ("implementing FC
    // layers as Conv2Ds" in the paper; our array maps them directly).
    let a = assignments(&toyadmos_dae(QuantScheme::Ternary), DeployConfig::Analog);
    assert_eq!(
        a.iter().filter(|x| x.engine == EngineKind::Analog).count(),
        10
    );
}

#[test]
fn cpu_tvm_config_never_offloads() {
    for deploy_model in [
        ds_cnn(QuantScheme::Int8),
        resnet8(QuantScheme::Int8),
        toyadmos_dae(QuantScheme::Int8),
    ] {
        let a = assignments(&deploy_model, DeployConfig::CpuTvm);
        assert!(a.iter().all(|x| x.engine == EngineKind::Cpu));
    }
}

#[test]
fn ternary_network_on_digital_only_falls_back_to_cpu() {
    // The digital engine cannot execute ternary weights; with no analog
    // engine enabled, everything lands on the CPU.
    let a = assignments(&toyadmos_dae(QuantScheme::Ternary), DeployConfig::Digital);
    assert!(a.iter().all(|x| x.engine == EngineKind::Cpu));
}

#[test]
fn tile_counts_reflect_memory_pressure() {
    // ToyAdmos's first dense layer (640x128 = 80 kB of weights) cannot fit
    // the 64 kB digital weight memory untiled.
    let a = assignments(&toyadmos_dae(QuantScheme::Int8), DeployConfig::Digital);
    let first_dense = a
        .iter()
        .find(|x| x.engine == EngineKind::Digital)
        .expect("dense layer offloaded");
    assert!(
        first_dense.n_tiles > 1,
        "80 kB of weights must be tiled, got {} tiles",
        first_dense.n_tiles
    );
}

#[test]
fn output_pooling_fuses_into_accelerator_regions() {
    // Paper §III-C: the accelerators execute "some pooling operations at
    // the output". The global average pool after DS-CNN's last pointwise
    // conv (and after ResNet's final residual add) must fuse into the
    // accelerator region: no CPU kernel may contain a pooling op.
    for model in [ds_cnn(QuantScheme::Int8), resnet8(QuantScheme::Int8)] {
        let artifact = Compiler::new()
            .with_deploy(DeployConfig::Digital)
            .compile(&model.graph)
            .expect("compiles");
        for step in &artifact.program.steps {
            if let htvm_soc::Step::CpuFused { graph, name, .. } = step {
                let has_pool = graph
                    .nodes()
                    .any(|(_, n)| matches!(n.op(), Some(htvm_ir::Op::Pool2d { .. })));
                assert!(!has_pool, "{}: pool left on the CPU in {name}", model.name);
            }
        }
        // The pooled region exists: one accel step outputs the pooled shape.
        let pooled = artifact
            .program
            .steps
            .iter()
            .any(|s| matches!(s, htvm_soc::Step::Accel { desc, .. } if desc.pool.is_some()));
        assert!(pooled, "{}: no fused pool found", model.name);
    }
}
