//! Determinism tests: the whole pipeline — model generation, tiling,
//! partitioning, memory planning, simulation — must be bit-reproducible,
//! since every benchmark number in EXPERIMENTS.md depends on it.

use htvm::{Compiler, DeployConfig, LowerOptions, Machine};
use htvm_models::{ds_cnn, mobilenet_v1, resnet8, toyadmos_dae, QuantScheme};

#[test]
fn model_generation_is_deterministic() {
    for scheme in [QuantScheme::Int8, QuantScheme::Ternary, QuantScheme::Mixed] {
        assert_eq!(ds_cnn(scheme).graph, ds_cnn(scheme).graph);
        assert_eq!(resnet8(scheme).graph, resnet8(scheme).graph);
    }
}

#[test]
fn compilation_is_deterministic_across_invocations() {
    let model = resnet8(QuantScheme::Mixed);
    let a = Compiler::new()
        .with_deploy(DeployConfig::Both)
        .compile(&model.graph)
        .expect("compiles");
    let b = Compiler::new()
        .with_deploy(DeployConfig::Both)
        .compile(&model.graph)
        .expect("compiles");
    assert_eq!(a, b);
}

#[test]
fn simulation_is_deterministic() {
    let model = toyadmos_dae(QuantScheme::Int8);
    let compiler = Compiler::new().with_deploy(DeployConfig::Digital);
    let artifact = compiler.compile(&model.graph).expect("compiles");
    let machine = Machine::new(*compiler.platform());
    let r1 = machine
        .run(&artifact.program, &[model.input(5)])
        .expect("runs");
    let r2 = machine
        .run(&artifact.program, &[model.input(5)])
        .expect("runs");
    assert_eq!(r1.outputs, r2.outputs);
    assert_eq!(r1.total_cycles(), r2.total_cycles());
    assert_eq!(r1.layers, r2.layers);
}

#[test]
fn different_inputs_same_cycles() {
    // Latency is data-independent (no data-gated paths in the SoC model):
    // the same program costs the same cycles for any input values.
    let model = ds_cnn(QuantScheme::Int8);
    let compiler = Compiler::new().with_deploy(DeployConfig::Digital);
    let artifact = compiler.compile(&model.graph).expect("compiles");
    let machine = Machine::new(*compiler.platform());
    let r1 = machine
        .run(&artifact.program, &[model.input(1)])
        .expect("runs");
    let r2 = machine
        .run(&artifact.program, &[model.input(2)])
        .expect("runs");
    assert_eq!(
        r1.total_cycles(),
        r2.total_cycles(),
        "cycle counts are data-independent"
    );
    // Sanity-check data dependence on a shallow graph (deep synthetic
    // networks can wash out input dependence through requantization).
    let mut b = htvm::GraphBuilder::new();
    let x = b.input("x", &[1, 4, 4], htvm::DType::I8);
    let w = b.constant(
        "w",
        htvm::Tensor::new(htvm::DType::I8, &[1, 1, 1, 1], vec![1]).unwrap(),
    );
    let c = b.conv2d(x, w, (1, 1), (0, 0, 0, 0)).unwrap();
    let c = b.right_shift(c, 0).unwrap();
    let c = b.clip(c, -128, 127).unwrap();
    let c = b.cast(c, htvm::DType::I8).unwrap();
    let g = b.finish(&[c]).unwrap();
    let artifact = compiler.compile(&g).expect("compiles");
    let i1 = htvm_models::random_input(1, &[1, 4, 4]);
    let i2 = htvm_models::random_input(2, &[1, 4, 4]);
    let o1 = machine
        .run(&artifact.program, std::slice::from_ref(&i1))
        .expect("runs");
    let o2 = machine.run(&artifact.program, &[i2]).expect("runs");
    assert_eq!(o1.outputs[0], i1, "identity conv passes data through");
    assert_ne!(o1.outputs, o2.outputs, "different inputs, different data");
}

#[test]
fn kernel_thread_count_is_invisible_in_outputs_and_cycles() {
    // The fast-kernel backend fans large layers across worker threads
    // (`HTVM_NUM_THREADS`); every tier accumulates with exact i32
    // arithmetic, so the thread count must be invisible in every output
    // bit and every simulated cycle — the BENCH.json gate relies on it.
    // MobileNet's convolutions cross the parallelism threshold; the
    // transformer run pins the attention tiers (matmul, integer softmax,
    // layer norm) and its 16384-wide classifier dense under the same
    // sweep.
    for model in [
        mobilenet_v1(QuantScheme::Int8),
        htvm_models::tiny_transformer(QuantScheme::Int8),
    ] {
        let compiler = Compiler::new().with_deploy(DeployConfig::Both);
        let artifact = compiler.compile(&model.graph).expect("compiles");
        let machine = Machine::new(*compiler.platform());
        let input = model.input(9);

        let mut sim_reports = Vec::new();
        let mut eval_outputs = Vec::new();
        for setting in [Some("1"), Some("4"), None] {
            match setting {
                Some(v) => std::env::set_var("HTVM_NUM_THREADS", v),
                None => std::env::remove_var("HTVM_NUM_THREADS"),
            }
            // Tiled, accelerated simulation (feeds BENCH.json cycles)...
            sim_reports.push(
                machine
                    .run(&artifact.program, std::slice::from_ref(&input))
                    .expect("runs"),
            );
            // ...and the full-layer reference interpreter, whose big
            // layers actually cross the parallelism threshold.
            eval_outputs.push(
                htvm_kernels::evaluate(&model.graph, std::slice::from_ref(&input))
                    .expect("evaluates"),
            );
        }
        std::env::remove_var("HTVM_NUM_THREADS");

        let (first, rest) = sim_reports.split_first().expect("three runs");
        for r in rest {
            assert_eq!(
                first.outputs, r.outputs,
                "{}: sim outputs differ",
                model.name
            );
            assert_eq!(
                first.total_cycles(),
                r.total_cycles(),
                "{}: cycles differ",
                model.name
            );
            assert_eq!(
                first.layers, r.layers,
                "{}: layer profiles differ",
                model.name
            );
        }
        let (first, rest) = eval_outputs.split_first().expect("three runs");
        for o in rest {
            assert_eq!(
                first, o,
                "{}: reference interpreter outputs differ",
                model.name
            );
        }
    }
}

#[test]
fn parallel_solve_phase_matches_sequential_byte_for_byte() {
    // The solve phase fans out across threads by default; with
    // `parallel: false` the same lowering runs on one thread. The two
    // artifacts must agree not just structurally but in serialized bytes —
    // thread scheduling must have no observable effect on the output.
    for model in [mobilenet_v1(QuantScheme::Mixed), resnet8(QuantScheme::Int8)] {
        let parallel = Compiler::new()
            .with_deploy(DeployConfig::Both)
            .compile(&model.graph)
            .expect("parallel compile");
        let sequential = Compiler::new()
            .with_deploy(DeployConfig::Both)
            .with_lower_options(LowerOptions {
                parallel: false,
                ..LowerOptions::default()
            })
            .compile(&model.graph)
            .expect("sequential compile");
        assert_eq!(parallel, sequential, "{}", model.name);
        assert_eq!(
            serde_json::to_string(&parallel).expect("serializes"),
            serde_json::to_string(&sequential).expect("serializes"),
            "{} parallel vs sequential bytes",
            model.name
        );
    }
}

#[test]
fn warm_tile_cache_changes_stats_but_not_the_artifact() {
    let model = mobilenet_v1(QuantScheme::Int8);
    let compiler = Compiler::new().with_deploy(DeployConfig::Both);
    let cold = compiler.compile(&model.graph).expect("cold compile");
    let warm = compiler.compile(&model.graph).expect("warm compile");

    // Identical product, byte for byte.
    assert_eq!(cold, warm);
    assert_eq!(
        serde_json::to_string(&cold).expect("serializes"),
        serde_json::to_string(&warm).expect("serializes"),
    );

    // MobileNet repeats block geometries, so even the cold compile hits
    // the cache within itself...
    assert!(cold.stats.regions > 0);
    assert!(
        cold.stats.cache_hits >= 1,
        "repeated blocks should hit in-compile: {:?}",
        cold.stats
    );
    assert!(cold.stats.solves_performed > 0);
    // ...and the warm compile is answered entirely from the cache.
    assert_eq!(warm.stats.solves_performed, 0, "{:?}", warm.stats);
    assert_eq!(warm.stats.cache_hits, warm.stats.regions as u64);
    assert_eq!(compiler.tile_cache().solves(), cold.stats.solves_performed);
}

#[test]
fn tile_cache_memoizes_infeasible_solves() {
    // Negative results are cached too: a geometry that cannot fit the
    // budget costs one solver invocation, and every later ask for the
    // same (geometry, budget, objective) triple is answered from the
    // cache — same error, no re-solve.
    use htvm::{LayerGeometry, MemoryBudget, TileCache, TilingObjective};
    let cache = TileCache::new();
    let geom = LayerGeometry::dense(4096, 4096);
    let budget = MemoryBudget::unified(4);
    let objective = TilingObjective::memory_only();

    let (first, hit) = cache.solve_cached(&geom, &budget, &objective);
    assert!(first.is_err(), "a 16 MB dense layer cannot tile into 4 B");
    assert!(!hit, "first solve is a miss");
    assert_eq!(cache.solves(), 1);
    assert_eq!(cache.hits(), 0);

    let (second, hit) = cache.solve_cached(&geom, &budget, &objective);
    assert!(hit, "second solve must be served from the negative entry");
    assert_eq!(cache.solves(), 1, "the solver must not run again");
    assert_eq!(cache.hits(), 1);
    assert_eq!(
        format!("{:?}", first.unwrap_err()),
        format!("{:?}", second.unwrap_err()),
        "cached error matches the original"
    );
}

#[test]
fn tracing_is_observation_only() {
    // The tracer may watch the pipeline but never steer it: compiling
    // with tracing enabled must produce an artifact byte-identical to
    // the untraced one, and the simulated cycle counts must match — the
    // zero-cost-when-disabled guarantee from docs/OBSERVABILITY.md, read
    // in both directions.
    let model = resnet8(QuantScheme::Mixed);
    let plain = Compiler::new().with_deploy(DeployConfig::Both);
    let tracer = htvm::Tracer::new();
    let traced = Compiler::new()
        .with_deploy(DeployConfig::Both)
        .with_tracer(tracer.clone());

    let a = plain.compile(&model.graph).expect("untraced compile");
    let b = traced.compile(&model.graph).expect("traced compile");
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).expect("serializes"),
        serde_json::to_string(&b).expect("serializes"),
        "artifacts are byte-identical with tracing on vs off"
    );

    let machine = Machine::new(*plain.platform());
    let ra = machine.run(&a.program, &[model.input(3)]).expect("runs");
    let rb = machine.run(&b.program, &[model.input(3)]).expect("runs");
    assert_eq!(ra.outputs, rb.outputs);
    assert_eq!(ra.total_cycles(), rb.total_cycles());
    assert_eq!(ra.layers, rb.layers);

    // And the trace actually observed the compile: every phase span is
    // present, on the phases track, with a parseable chrome export.
    let trace = tracer.take(htvm::TimeDomain::WallMicros, htvm::tracks::compile());
    for phase in [
        "verify",
        "fold_constants",
        "partition",
        "solve",
        "emit",
        "l2_plan",
    ] {
        assert!(
            trace.span(phase).is_some(),
            "missing {phase} span in {:?}",
            trace.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }
    let solve = trace.span("solve").expect("solve span");
    assert_eq!(
        solve.arg_u64("regions"),
        Some(b.stats.regions as u64),
        "span args mirror CompileStats"
    );
    assert!(
        trace.on_track(htvm::tracks::REGIONS).count() >= b.stats.regions,
        "every region solve gets its own span"
    );
    let chrome: serde_json::Value =
        serde_json::from_str(&trace.to_chrome_trace()).expect("chrome export is valid JSON");
    assert!(!chrome["traceEvents"].as_array().expect("array").is_empty());
}

#[test]
fn artifact_serialization_round_trips() {
    // Artifacts are serde-serializable (bench output, caching); a JSON
    // round trip must preserve the program exactly.
    let model = toyadmos_dae(QuantScheme::Int8);
    let artifact = Compiler::new()
        .with_deploy(DeployConfig::Digital)
        .compile(&model.graph)
        .expect("compiles");
    let json = serde_json::to_string(&artifact).expect("serializes");
    let back: htvm::Artifact = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(artifact, back);
}
