//! The paper's §IV figure-level claims, codified as ranged assertions so
//! the reproduction cannot silently drift away from the published shape.
//! (Exact values are pinned by `tests/golden.rs`; these tests assert the
//! *relations* the paper draws.)

use htvm::{single_layer_program, DianaConfig, EngineKind, Machine, MemoryBudget, TilingObjective};
use htvm_dory::{solve, ArrayDims, LayerGeometry};
use htvm_ir::DType;
use htvm_models::layers::{
    fig4_budgets, fig4_layers, fig5_conv_channel_sweep, fig5_dw_sweep, fig5_fc_sweep,
};
use htvm_models::random_input;

fn digital_budget(act_bytes: usize) -> MemoryBudget {
    MemoryBudget {
        act_bytes,
        weight_bytes: Some(DianaConfig::default().digital.weight_bytes),
        array: None,
    }
}

fn run_layer(geom: &LayerGeometry, tile: htvm::TileConfig, engine: EngineKind) -> htvm::RunReport {
    let machine = Machine::new(DianaConfig::default());
    let program = single_layer_program(geom, tile, engine);
    let input = if geom.kind == htvm::LayerKind::Dense {
        random_input(3, &[geom.c])
    } else {
        random_input(3, &[geom.c, geom.iy, geom.ix])
    };
    machine.run(&program, &[input]).expect("layer runs")
}

/// Fig. 4: "applying both heuristics incurs lower or equivalent cycle
/// counts in all experiments" — the full Eq. 3–5 objective never loses to
/// Eq. 3–4 alone, and both never lose to heuristic-free tiling by more
/// than measurement noise.
#[test]
fn fig4_full_heuristics_never_worse_than_pe_only() {
    for (name, geom) in fig4_layers() {
        for budget_bytes in fig4_budgets() {
            let budget = digital_budget(budget_bytes);
            let pe = solve(&geom, &budget, &TilingObjective::diana_digital_pe_only());
            let full = solve(&geom, &budget, &TilingObjective::diana_digital());
            let (Ok(pe), Ok(full)) = (pe, full) else {
                continue;
            };
            let pe_cycles = run_layer(&geom, pe.tile, EngineKind::Digital).total_cycles();
            let full_cycles = run_layer(&geom, full.tile, EngineKind::Digital).total_cycles();
            assert!(
                full_cycles <= pe_cycles,
                "{name} @ {budget_bytes}B: pe+dma {full_cycles} > pe {pe_cycles}"
            );
        }
    }
}

/// Fig. 4: the heuristics deliver a multi-x speedup somewhere in the sweep
/// (paper: up to 6.2x).
#[test]
fn fig4_heuristics_deliver_multi_x_speedup_somewhere() {
    let mut best: f64 = 1.0;
    for (_, geom) in fig4_layers() {
        for budget_bytes in fig4_budgets() {
            let budget = digital_budget(budget_bytes);
            let (Ok(none), Ok(full)) = (
                solve(&geom, &budget, &TilingObjective::memory_only()),
                solve(&geom, &budget, &TilingObjective::diana_digital()),
            ) else {
                continue;
            };
            let a = run_layer(&geom, none.tile, EngineKind::Digital).total_cycles();
            let b = run_layer(&geom, full.tile, EngineKind::Digital).total_cycles();
            best = best.max(a as f64 / b as f64);
        }
    }
    assert!(
        best >= 3.0,
        "expected a multi-x heuristic win, got {best:.2}x"
    );
}

/// Fig. 4 grey region: above the layer's footprint every objective
/// coincides because no tiling is needed.
#[test]
fn fig4_untiled_region_is_objective_independent() {
    let (_, geom) = fig4_layers().remove(0);
    let budget = digital_budget(256 * 1024);
    let mut cycle_counts = Vec::new();
    for obj in [
        TilingObjective::memory_only(),
        TilingObjective::diana_digital_pe_only(),
        TilingObjective::diana_digital(),
    ] {
        let sol = solve(&geom, &budget, &obj).expect("fits");
        assert!(sol.fits_untiled);
        cycle_counts.push(run_layer(&geom, sol.tile, EngineKind::Digital).total_cycles());
    }
    assert!(cycle_counts.windows(2).all(|w| w[0] == w[1]));
}

fn loss_pct(report: &htvm::RunReport) -> f64 {
    let l = &report.layers[0];
    100.0 * (1.0 - l.cycles.peak() as f64 / l.cycles.total().max(1) as f64)
}

/// Fig. 5: overhead shrinks as layers grow — the largest conv in each
/// sweep loses less throughput than the smallest.
#[test]
fn fig5_overhead_shrinks_with_macs() {
    let cfg = DianaConfig::default();
    let analog_budget = MemoryBudget {
        act_bytes: cfg.l1_act_bytes,
        weight_bytes: None,
        array: Some(ArrayDims {
            rows: cfg.analog.rows,
            cols: cfg.analog.cols,
        }),
    };
    let sweep = fig5_conv_channel_sweep(DType::Ternary);
    let losses: Vec<f64> = sweep
        .iter()
        .map(|geom| {
            let sol =
                solve(geom, &analog_budget, &TilingObjective::diana_analog()).expect("tileable");
            loss_pct(&run_layer(geom, sol.tile, EngineKind::Analog))
        })
        .collect();
    assert!(
        losses.first().unwrap() > losses.last().unwrap(),
        "losses should shrink: {losses:?}"
    );
    // Paper: ~5.2% average loss for analog convs; allow a loose band.
    let avg = losses.iter().sum::<f64>() / losses.len() as f64;
    assert!((2.0..20.0).contains(&avg), "average loss {avg:.1}%");
}

/// Fig. 5: the smallest FC layer is overhead-bound — worse relative loss
/// than any conv in the sweeps (paper: 54.5% for the fastest FC).
#[test]
fn fig5_fc_is_the_overhead_worst_case() {
    let budget = digital_budget(DianaConfig::default().l1_act_bytes);
    let small_fc = &fig5_fc_sweep()[0];
    let sol = solve(small_fc, &budget, &TilingObjective::diana_digital()).expect("fits");
    let fc_loss = loss_pct(&run_layer(small_fc, sol.tile, EngineKind::Digital));
    assert!(
        fc_loss > 50.0,
        "small FC should lose >50%, got {fc_loss:.1}%"
    );
}

/// Fig. 5 / §IV-B: depthwise peaks at 3.75 MAC/cycle (scaled by the
/// modeled pipeline efficiency) and never beats it.
#[test]
fn fig5_depthwise_obeys_peak_throughput() {
    let cfg = DianaConfig::default();
    let budget = digital_budget(cfg.l1_act_bytes);
    let ceiling = 3.75 * cfg.digital.efficiency_pct as f64 / 100.0;
    for geom in fig5_dw_sweep() {
        let sol = solve(&geom, &budget, &TilingObjective::diana_digital()).expect("fits");
        let report = run_layer(&geom, sol.tile, EngineKind::Digital);
        let peak = report.layers[0].cycles.peak().max(1);
        let tput = geom.macs() as f64 / peak as f64;
        assert!(
            tput <= ceiling * 1.01,
            "dw throughput {tput:.2} exceeds ceiling {ceiling:.2}"
        );
    }
}

/// Table II relations: CMSIS-NN beats plain TVM, GAP9 beats both MCUs on
/// every network, and HTVM-on-DIANA sits between GAP9 and the MCUs.
#[test]
fn table2_platform_ordering() {
    use htvm_soc::platforms::{NetworkWorkload, PlatformModel};
    // Table II covers the four MLPerf Tiny networks only. The attention
    // workload (`tiny_transformer`) is softmax-bound on DIANA's CPU and
    // legitimately falls outside the table's ordering claim.
    let table2_models = htvm_models::all_models(htvm_models::QuantScheme::Int8)
        .into_iter()
        .filter(|m| m.name != "tiny_transformer");
    for model in table2_models {
        let w = NetworkWorkload::from_graph(&model.graph);
        let tvm = PlatformModel::stm32_tvm().latency_ms(&w);
        let cmsis = PlatformModel::stm32_cmsis_nn().latency_ms(&w);
        let gap9 = PlatformModel::gap9_gapflow().latency_ms(&w);
        assert!(tvm >= cmsis, "{}", model.name);
        assert!(cmsis > gap9, "{}", model.name);
        let (_, report) = {
            let compiler = htvm::Compiler::new().with_deploy(htvm::DeployConfig::Digital);
            let artifact = compiler.compile(&model.graph).expect("compiles");
            let machine = Machine::new(*compiler.platform());
            (
                artifact,
                machine
                    .run(
                        &compiler.compile(&model.graph).unwrap().program,
                        &[model.input(7)],
                    )
                    .expect("runs"),
            )
        };
        let diana = DianaConfig::default().cycles_to_ms(report.total_cycles());
        assert!(
            diana < cmsis,
            "{}: DIANA {diana} vs CMSIS {cmsis}",
            model.name
        );
        assert!(diana > gap9, "{}: DIANA {diana} vs GAP9 {gap9}", model.name);
    }
}
