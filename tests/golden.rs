//! Golden regression tests: exact cycle counts and binary sizes for every
//! (network, configuration) pair at the committed calibration.
//!
//! These pin down the numbers EXPERIMENTS.md quotes. They are *expected*
//! to change when someone deliberately retunes `DianaConfig::default()`
//! or `BinarySizeModel::default()` — update them together with
//! EXPERIMENTS.md — but any unintended drift in the solver, partitioner,
//! memory planner or cost models fails here first.

use htvm::{Compiler, DeployConfig, Machine};
use htvm_models::{all_models, QuantScheme};

fn scheme_for(deploy: DeployConfig) -> QuantScheme {
    match deploy {
        DeployConfig::CpuTvm | DeployConfig::Digital => QuantScheme::Int8,
        DeployConfig::Analog => QuantScheme::Ternary,
        DeployConfig::Both => QuantScheme::Mixed,
    }
}

/// `Some((total_cycles, binary_bytes))`, or `None` for an expected OoM.
type Expectation = Option<(u64, usize)>;

const GOLDEN: &[(&str, DeployConfig, Expectation)] = &[
    ("ds_cnn", DeployConfig::CpuTvm, Some((9916904, 58488))),
    ("mobilenet_v1", DeployConfig::CpuTvm, None),
    ("resnet8", DeployConfig::CpuTvm, Some((35335199, 119784))),
    (
        "toyadmos_dae",
        DeployConfig::CpuTvm,
        Some((1198460, 303120)),
    ),
    ("ds_cnn", DeployConfig::Digital, Some((429914, 50832))),
    (
        "mobilenet_v1",
        DeployConfig::Digital,
        Some((865141, 256648)),
    ),
    ("resnet8", DeployConfig::Digital, Some((283570, 107328))),
    ("toyadmos_dae", DeployConfig::Digital, Some((68589, 293264))),
    ("ds_cnn", DeployConfig::Analog, Some((3343968, 86992))),
    (
        "mobilenet_v1",
        DeployConfig::Analog,
        Some((9419116, 301680)),
    ),
    ("resnet8", DeployConfig::Analog, Some((389002, 120080))),
    ("toyadmos_dae", DeployConfig::Analog, Some((283664, 266640))),
    ("ds_cnn", DeployConfig::Both, Some((407586, 67216))),
    ("mobilenet_v1", DeployConfig::Both, Some((918111, 265224))),
    ("resnet8", DeployConfig::Both, Some((384002, 104768))),
    ("toyadmos_dae", DeployConfig::Both, Some((181493, 315792))),
];

#[test]
fn cycle_counts_and_sizes_match_committed_calibration() {
    for &(name, deploy, expected) in GOLDEN {
        let model = all_models(scheme_for(deploy))
            .into_iter()
            .find(|m| m.name == name)
            .expect("model exists");
        let compiler = Compiler::new().with_deploy(deploy);
        match (compiler.compile(&model.graph), expected) {
            (Ok(artifact), Some((cycles, bytes))) => {
                let machine = Machine::new(*compiler.platform());
                let report = machine
                    .run(&artifact.program, &[model.input(7)])
                    .expect("runs");
                assert_eq!(
                    report.total_cycles(),
                    cycles,
                    "{name}/{deploy:?}: cycles drifted"
                );
                assert_eq!(
                    artifact.binary.total(),
                    bytes,
                    "{name}/{deploy:?}: binary size drifted"
                );
            }
            (Err(e), None) => {
                assert!(
                    matches!(
                        e,
                        htvm::CompileError::Lower(htvm::LowerError::OutOfMemory(_))
                    ),
                    "{name}/{deploy:?}: expected OoM, got {e}"
                );
            }
            (Ok(_), None) => panic!("{name}/{deploy:?}: expected OoM but compiled"),
            (Err(e), Some(_)) => panic!("{name}/{deploy:?}: unexpected failure {e}"),
        }
    }
}
