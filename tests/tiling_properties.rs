//! Property-based tests for the DORY tiling substrate: Eq. 2 soundness,
//! exact output coverage, and bit-exact tiled execution against the
//! reference kernels for arbitrary geometries and tile choices.

use htvm_dory::{
    solve, tile_fits, tiles, LayerGeometry, MemoryBudget, TileConfig, TilingObjective,
};
use htvm_ir::{DType, Padding2d, Tensor};
use proptest::prelude::*;

/// Random but valid convolution geometries, kept small enough for the
/// reference kernels.
fn conv_geometry() -> impl Strategy<Value = LayerGeometry> {
    (
        1usize..=24, // c
        1usize..=24, // k
        3usize..=20, // iy
        3usize..=20, // ix
        1usize..=3,  // fy
        1usize..=3,  // fx
        1usize..=2,  // stride
        0usize..=1,  // pad
    )
        .prop_map(|(c, k, iy, ix, fy, fx, s, p)| {
            LayerGeometry::conv2d(
                c,
                k,
                iy.max(fy),
                ix.max(fx),
                fy,
                fx,
                (s, s),
                Padding2d::same(p),
            )
        })
}

/// A valid random tile for a geometry.
fn tile_for(geom: &LayerGeometry) -> impl Strategy<Value = TileConfig> {
    let (c, k, oy, ox) = (geom.c, geom.k, geom.oy(), geom.ox());
    (1..=c, 1..=k, 1..=oy, 1..=ox).prop_map(|(c_t, k_t, oy_t, ox_t)| TileConfig {
        c_t,
        k_t,
        oy_t,
        ox_t,
    })
}

fn patterned(dtype: DType, dims: &[usize], salt: i32) -> Tensor {
    let mut t = Tensor::zeros(dtype, dims);
    let (lo, hi) = dtype.range();
    let span = (hi - lo + 1).min(13);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        *v = dtype.saturate((i as i32).wrapping_mul(31).wrapping_add(salt) % span + lo.max(-6));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tile loop touches every output element exactly once (on the
    /// final reduction slice) and every reduction slice exactly once.
    #[test]
    fn coverage_is_exact((geom, seed) in conv_geometry().prop_flat_map(|g| {
        let t = tile_for(&g);
        (Just(g), t)
    })) {
        let (geom, tile) = (geom, seed);
        let mut cover = vec![0u32; geom.k * geom.oy() * geom.ox()];
        for inst in tiles(&geom, &tile) {
            prop_assert!(inst.c.end <= geom.c);
            prop_assert!(inst.k.end <= geom.k);
            if inst.last_c {
                for k in inst.k.clone() {
                    for y in inst.oy.clone() {
                        for x in inst.ox.clone() {
                            cover[(k * geom.oy() + y) * geom.ox() + x] += 1;
                        }
                    }
                }
            }
        }
        prop_assert!(cover.iter().all(|&v| v == 1));
    }

    /// Tiled accumulation reproduces the reference convolution bit-exactly
    /// for any tile configuration.
    #[test]
    fn tiled_conv_is_bit_exact((geom, tile) in conv_geometry().prop_flat_map(|g| {
        let t = tile_for(&g);
        (Just(g), t)
    })) {
        let x = patterned(DType::I8, &[geom.c, geom.iy, geom.ix], 3);
        let w = patterned(DType::I8, &[geom.k, geom.c, geom.fy, geom.fx], 7);
        let reference = htvm_kernels::conv2d(&x, &w, geom.strides, geom.padding);
        let mut acc = Tensor::zeros(DType::I32, reference.shape().dims());
        for inst in tiles(&geom, &tile) {
            htvm_kernels::conv2d_accumulate(
                &x, &w, &mut acc,
                geom.strides, geom.padding,
                inst.k, inst.oy, inst.ox, inst.c,
            );
        }
        prop_assert_eq!(acc, reference);
    }

    /// Any solver solution satisfies the Eq. 2 capacity constraint, and
    /// its tile loop MAC total equals the layer MACs.
    #[test]
    fn solver_solutions_respect_eq2(
        geom in conv_geometry(),
        act_kb in 1usize..=64,
        w_kb in 1usize..=64,
    ) {
        let budget = MemoryBudget {
            act_bytes: act_kb * 1024,
            weight_bytes: Some(w_kb * 1024),
            array: None,
        };
        for objective in [
            TilingObjective::memory_only(),
            TilingObjective::diana_digital_pe_only(),
            TilingObjective::diana_digital(),
        ] {
            if let Ok(sol) = solve(&geom, &budget, &objective) {
                prop_assert!(tile_fits(&geom, &sol.tile, &budget));
                let total: u64 = tiles(&geom, &sol.tile).iter().map(|i| i.macs(&geom)).sum();
                prop_assert_eq!(total, geom.macs());
            }
        }
    }

    /// Under the heuristic objective, the heuristic solution's score
    /// dominates the memory-only solution's score (the solver really
    /// maximizes Eq. 1).
    #[test]
    fn heuristic_solution_dominates_in_score(
        geom in conv_geometry(),
        act_kb in 1usize..=32,
    ) {
        let budget = MemoryBudget {
            act_bytes: act_kb * 1024,
            weight_bytes: Some(32 * 1024),
            array: None,
        };
        let obj = TilingObjective::diana_digital();
        let (Ok(h), Ok(m)) = (
            solve(&geom, &budget, &obj),
            solve(&geom, &budget, &TilingObjective::memory_only()),
        ) else {
            return Ok(());
        };
        let hs = obj.score(&geom, &h.tile, &budget);
        let ms = obj.score(&geom, &m.tile, &budget);
        prop_assert!(hs >= ms - 1e-9, "heuristic {hs} vs memory-only {ms}");
    }

    /// Dense layers: tiled accumulation matches the reference for random
    /// splits of both dimensions.
    #[test]
    fn tiled_dense_is_bit_exact(
        c in 1usize..=64,
        k in 1usize..=64,
        c_t in 1usize..=64,
        k_t in 1usize..=64,
    ) {
        let (c_t, k_t) = (c_t.min(c), k_t.min(k));
        let geom = LayerGeometry::dense(c, k);
        let tile = TileConfig { c_t, k_t, oy_t: 1, ox_t: 1 };
        let x = patterned(DType::I8, &[c], 11);
        let w = patterned(DType::I8, &[k, c], 13);
        let reference = htvm_kernels::dense(&x, &w);
        let mut acc = Tensor::zeros(DType::I32, &[k]);
        for inst in tiles(&geom, &tile) {
            htvm_kernels::dense_accumulate(&x, &w, &mut acc, inst.k, inst.c);
        }
        prop_assert_eq!(acc, reference);
    }
}

#[test]
fn solver_error_only_when_nothing_fits() {
    // If solve() errors, even the minimal tile must violate the budget.
    let geom = LayerGeometry::conv2d(8, 8, 8, 8, 3, 3, (1, 1), (1, 1, 1, 1));
    // The minimal tile needs a 3x3 input halo (9 B) plus a 4 B partial-sum
    // accumulator; 8 bytes can never fit it.
    let budget = MemoryBudget {
        act_bytes: 8,
        weight_bytes: Some(8),
        array: None,
    };
    assert!(solve(&geom, &budget, &TilingObjective::diana_digital()).is_err());
    let minimal = TileConfig {
        c_t: 1,
        k_t: 1,
        oy_t: 1,
        ox_t: 1,
    };
    assert!(!tile_fits(&geom, &minimal, &budget));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Machine-level closure of the tiling story: for a random geometry,
    /// solve under a random budget, run the single-layer program on the
    /// simulator, and check the output against the reference kernels (the
    /// requantization parameters match `single_layer_program`'s fixed
    /// shift=5, relu=true epilogue).
    #[test]
    fn solved_tiles_execute_bit_exact_on_the_machine(
        geom in conv_geometry(),
        act_kb in 1usize..=16,
    ) {
        use htvm::{DianaConfig, EngineKind, Machine, single_layer_program};
        let budget = MemoryBudget {
            act_bytes: act_kb * 1024,
            weight_bytes: Some(64 * 1024),
            array: None,
        };
        let Ok(sol) = solve(&geom, &budget, &TilingObjective::diana_digital()) else {
            return Ok(()); // nothing fits this budget
        };
        let program = single_layer_program(&geom, sol.tile, EngineKind::Digital);
        let input = htvm_models::random_input(9, &[geom.c, geom.iy, geom.ix]);
        let machine = Machine::new(DianaConfig::default());
        let report = machine
            .run(&program, std::slice::from_ref(&input))
            .expect("solved tiles always satisfy the machine's L1 check");
        // Rebuild the reference from the program's own weights/bias.
        let htvm_soc::Step::Accel { desc, .. } = &program.steps[0] else {
            unreachable!("single-layer programs have one accel step");
        };
        let w = desc.weights.as_ref().expect("conv has weights");
        let conv = htvm_kernels::conv2d(&input, w, geom.strides, geom.padding);
        let conv = htvm_kernels::bias_add(&conv, desc.bias.as_ref().expect("bias"));
        let q = htvm_kernels::cast(
            &htvm_kernels::clip(&htvm_kernels::right_shift(&conv, desc.shift), -128, 127),
            htvm_ir::DType::I8,
        );
        let expected = htvm_kernels::relu(&q);
        prop_assert_eq!(&report.outputs[0], &expected);
    }
}
