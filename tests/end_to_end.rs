//! End-to-end integration tests: the four MLPerf™ Tiny networks compiled
//! and executed on the simulated DIANA SoC in every deployment
//! configuration, checked for bit-exactness against the reference
//! interpreter and for the paper's qualitative performance relations.

use htvm::{CompileError, Compiler, DeployConfig, LowerError, Machine, RunReport};
use htvm_models::{all_models, ds_cnn, mobilenet_v1, resnet8, Model, QuantScheme};

fn run(model: &Model, deploy: DeployConfig) -> (htvm::Artifact, RunReport) {
    let compiler = Compiler::new().with_deploy(deploy);
    let artifact = compiler
        .compile(&model.graph)
        .unwrap_or_else(|e| panic!("{} under {deploy:?}: {e}", model.name));
    let machine = Machine::new(*compiler.platform());
    let report = machine
        .run(&artifact.program, &[model.input(99)])
        .unwrap_or_else(|e| panic!("{} under {deploy:?}: {e}", model.name));
    (artifact, report)
}

fn reference(model: &Model) -> htvm_ir::Tensor {
    htvm_kernels::evaluate(&model.graph, &[model.input(99)])
        .expect("reference evaluation")
        .remove(0)
}

#[test]
fn digital_config_is_bit_exact_on_all_networks() {
    for model in all_models(QuantScheme::Int8) {
        let expected = reference(&model);
        let (_, report) = run(&model, DeployConfig::Digital);
        assert_eq!(report.outputs[0], expected, "{}", model.name);
    }
}

#[test]
fn analog_config_is_bit_exact_on_all_networks() {
    for model in all_models(QuantScheme::Ternary) {
        let expected = reference(&model);
        let (_, report) = run(&model, DeployConfig::Analog);
        assert_eq!(report.outputs[0], expected, "{}", model.name);
    }
}

#[test]
fn mixed_config_is_bit_exact_on_all_networks() {
    for model in all_models(QuantScheme::Mixed) {
        let expected = reference(&model);
        let (_, report) = run(&model, DeployConfig::Both);
        assert_eq!(report.outputs[0], expected, "{}", model.name);
    }
}

#[test]
fn cpu_tvm_is_bit_exact_where_it_fits() {
    for model in all_models(QuantScheme::Int8) {
        if model.name == "mobilenet_v1" {
            continue; // runs out of memory, see below
        }
        let expected = reference(&model);
        let (artifact, report) = run(&model, DeployConfig::CpuTvm);
        assert_eq!(report.outputs[0], expected, "{}", model.name);
        assert_eq!(artifact.offload_fraction(), 0.0, "{}", model.name);
    }
}

#[test]
fn mobilenet_oom_on_plain_tvm_reproduces() {
    // Table I: "MobileNet stops running with an error, since more than
    // 512kB of memory has to be allocated."
    let model = mobilenet_v1(QuantScheme::Int8);
    let err = Compiler::new()
        .with_deploy(DeployConfig::CpuTvm)
        .compile(&model.graph)
        .expect_err("plain TVM MobileNet must exceed L2");
    assert!(matches!(
        err,
        CompileError::Lower(LowerError::OutOfMemory(_))
    ));
    // ...but the HTVM memory planner makes the same network fit.
    let (_, report) = run(&model, DeployConfig::Digital);
    assert!(report.total_cycles() > 0);
}

#[test]
fn resnet_digital_speedup_is_two_orders_of_magnitude() {
    let int8 = resnet8(QuantScheme::Int8);
    let (_, tvm) = run(&int8, DeployConfig::CpuTvm);
    let (_, dig) = run(&int8, DeployConfig::Digital);
    let speedup = tvm.total_cycles() as f64 / dig.total_cycles() as f64;
    assert!(
        (50.0..400.0).contains(&speedup),
        "paper reports 112x, got {speedup:.0}x"
    );
}

#[test]
fn dscnn_mixed_beats_analog_only_by_several_x() {
    let (_, ana) = run(&ds_cnn(QuantScheme::Ternary), DeployConfig::Analog);
    let (_, mixed) = run(&ds_cnn(QuantScheme::Mixed), DeployConfig::Both);
    let ratio = ana.total_cycles() as f64 / mixed.total_cycles() as f64;
    assert!(
        (4.0..16.0).contains(&ratio),
        "paper reports 8x, got {ratio:.1}x"
    );
}

#[test]
fn peak_cycles_never_exceed_full_kernel_cycles() {
    for model in all_models(QuantScheme::Mixed) {
        let (_, report) = run(&model, DeployConfig::Both);
        assert!(
            report.peak_cycles() <= report.total_cycles(),
            "{}",
            model.name
        );
    }
}

#[test]
fn accelerated_configs_offload_the_mac_workload() {
    for model in all_models(QuantScheme::Int8) {
        let (artifact, _) = run(&model, DeployConfig::Digital);
        assert!(
            artifact.offload_fraction() > 0.99,
            "{}: {}",
            model.name,
            artifact.offload_fraction()
        );
    }
    // Analog-only cannot offload the depthwise layers.
    let (artifact, _) = run(&ds_cnn(QuantScheme::Ternary), DeployConfig::Analog);
    let f = artifact.offload_fraction();
    assert!(f > 0.5 && f < 1.0, "got {f}");
}

#[test]
fn resnet_binary_shrinks_at_equal_precision() {
    // Table I: ResNet binary shrinks up to 12.3% vs plain TVM because the
    // coarse-grained accelerator needs fewer instructions.
    let model = resnet8(QuantScheme::Int8);
    let (tvm, _) = run(&model, DeployConfig::CpuTvm);
    let (dig, _) = run(&model, DeployConfig::Digital);
    assert!(
        dig.binary.total() < tvm.binary.total(),
        "digital {} vs tvm {}",
        dig.binary.total(),
        tvm.binary.total()
    );
}

#[test]
fn ternary_weights_shrink_toyadmos_binary() {
    // Table I: ToyAdmos ternary weights need less storage than 8-bit.
    let int8 = htvm_models::toyadmos_dae(QuantScheme::Int8);
    let ternary = htvm_models::toyadmos_dae(QuantScheme::Ternary);
    let (d, _) = run(&int8, DeployConfig::Digital);
    let (a, _) = run(&ternary, DeployConfig::Analog);
    assert!(a.binary.weights < d.binary.weights);
}

#[test]
fn analog_padding_inflates_dscnn_binary() {
    // Table I: DS-CNN's small channel counts leave most of the IMC macro
    // empty, inflating the analog binary past the digital one.
    let (d, _) = run(&ds_cnn(QuantScheme::Int8), DeployConfig::Digital);
    let (a, _) = run(&ds_cnn(QuantScheme::Ternary), DeployConfig::Analog);
    assert!(a.binary.total() > d.binary.total());
}

#[test]
fn stress_network_is_bit_exact_in_every_config() {
    // A synthetic network exercising asymmetric padding, mixed strides,
    // stacked residuals, max+avg pooling and a forced-tiling dense layer.
    for (deploy, scheme) in [
        (DeployConfig::CpuTvm, QuantScheme::Int8),
        (DeployConfig::Digital, QuantScheme::Int8),
        (DeployConfig::Analog, QuantScheme::Ternary),
        (DeployConfig::Both, QuantScheme::Mixed),
    ] {
        let model = htvm_models::stress_test(scheme);
        let expected = reference(&model);
        let (artifact, report) = run(&model, deploy);
        assert_eq!(report.outputs[0], expected, "{deploy:?}");
        if deploy != DeployConfig::CpuTvm {
            assert!(artifact.offload_fraction() > 0.5, "{deploy:?}");
        }
        // The wide dense layer (83 kB of weights) must be tiled on digital.
        if deploy == DeployConfig::Digital {
            let wide = artifact
                .assignments
                .iter()
                .find(|a| a.macs == 32 * 2600)
                .expect("wide dense offloaded");
            assert!(wide.n_tiles > 1, "83 kB of weights must tile");
        }
    }
}
